package cq

import (
	"context"
	"strings"
	"testing"

	"repro/internal/buffer"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/stream"
	"repro/internal/window"
)

// TestTelemetryMatchesReport is the cross-check between the live metrics
// and the post-hoc report: after a RunConcurrent execution, every stage
// counter must equal the corresponding AggReport/handler total. If these
// drift apart, either the dashboard lies or the report does.
func TestTelemetryMatchesReport(t *testing.T) {
	tuples := gen.Sensor(20000, 11).Arrivals()
	reg := obs.NewRegistry()
	telem := NewTelemetry(reg, "obs-test", window.Spec{Size: 10 * stream.Second, Slide: stream.Second})
	handler := buffer.NewKSlack(500)

	rep, err := New(stream.FromTuples(tuples)).
		Filter(func(tp stream.Tuple) bool { return tp.Seq%10 != 0 }). // exercise post-transform accounting
		Handle(handler).
		Window(window.Spec{Size: 10 * stream.Second, Slide: stream.Second}, window.Sum()).
		Instrument(telem).
		RunConcurrent(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := telem.SourceIn.Value(), float64(rep.Disorder.N); got != want {
		t.Errorf("source stage counter = %g, want %g (accepted data tuples)", got, want)
	}
	if got, want := telem.Released.Value(), float64(rep.Handler.Released); got != want {
		t.Errorf("disorder stage counter = %g, want %g (released tuples)", got, want)
	}
	if got, want := telem.Results.Value(), float64(len(rep.Results)); got != want {
		t.Errorf("window stage counter = %g, want %g (emitted results)", got, want)
	}
	if got, want := telem.Shed.Value(), float64(rep.Shed); got != want {
		t.Errorf("shed counter = %g, want %g", got, want)
	}
	// Latency histogram covers exactly the progress-emitted results,
	// matching the PreFlush split the latency metrics use.
	if got, want := telem.EmitLatency.Count(), uint64(rep.PreFlush); got != want {
		t.Errorf("latency histogram count = %d, want %d (PreFlush results)", got, want)
	}
	// The whole pipeline must be visible in one scrape.
	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		`aq_stage_tuples_total{query="obs-test",stage="source"}`,
		`aq_stage_tuples_total{query="obs-test",stage="disorder"}`,
		`aq_stage_tuples_total{query="obs-test",stage="window"}`,
		`aq_emit_latency_ms_count{query="obs-test"}`,
		`aq_queue_depth{query="obs-test",queue="ingest"}`,
	} {
		if !strings.Contains(out.String(), series) {
			t.Errorf("exposition missing %s", series)
		}
	}
}

// TestTelemetryShedCounting checks the shed counter against the report
// under a shedding overload policy with a tiny ingest queue.
func TestTelemetryShedCounting(t *testing.T) {
	tuples := gen.Sensor(20000, 7).Arrivals()
	reg := obs.NewRegistry()
	telem := NewTelemetry(reg, "shed-test", window.Spec{Size: 10 * stream.Second, Slide: stream.Second})

	// A 1-slot ingest queue races the producer against the disorder
	// stage; how many tuples shed is timing-dependent, but the invariant
	// under test is timing-free: live counter == report count, and
	// accepted == input − shed.
	rep, err := New(stream.FromTuples(tuples)).
		Handle(buffer.NewKSlack(0)).
		Window(window.Spec{Size: 10 * stream.Second, Slide: stream.Second}, window.Sum()).
		Overload(resilience.ShedNewest, 1).
		Instrument(telem).
		RunConcurrent(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := telem.Shed.Value(), float64(rep.Shed); got != want {
		t.Errorf("shed counter = %g, want %g", got, want)
	}
	if got, want := telem.SourceIn.Value(), float64(rep.Disorder.N)-float64(rep.Shed); got != want {
		t.Errorf("source counter = %g, want %g (accepted = input − shed)", got, want)
	}
}

// TestInstrumentedHandlerWrapper drives buffer.Instrument through a run
// and checks the wrapper's counters against the wrapped handler's stats.
func TestInstrumentedHandlerWrapper(t *testing.T) {
	tuples := gen.SensorBursty(10000, 5).Arrivals()
	reg := obs.NewRegistry()
	inner := buffer.NewMaxSlack()
	wrapped := buffer.Instrument(inner, reg, obs.L("query", "wrap-test"))

	rep, err := New(stream.FromTuples(tuples)).
		Handle(wrapped).
		Window(window.Spec{Size: 5 * stream.Second, Slide: stream.Second}, window.Avg()).
		RunConcurrent(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Handler
	check := func(name string, want int64) {
		t.Helper()
		got := reg.Counter(name, "", obs.L("query", "wrap-test")).Value()
		if got != float64(want) {
			t.Errorf("%s = %g, want %d", name, got, want)
		}
	}
	check("aq_buffer_inserted_total", st.Inserted)
	check("aq_buffer_released_total", st.Released)
	check("aq_buffer_stragglers_total", st.Stragglers)
	// MaxSlack grows K as lateness peaks arrive; the bursty workload must
	// have produced at least one adaptation, and the gauge must agree
	// with the final slack.
	if v := reg.Counter("aq_buffer_k_adaptations_total", "", obs.L("query", "wrap-test")).Value(); v == 0 {
		t.Error("no K adaptations recorded for MaxSlack on a bursty workload")
	}
	if v := reg.Gauge("aq_buffer_k_ms", "", obs.L("query", "wrap-test")).Value(); v != float64(inner.K()) {
		t.Errorf("k gauge = %g, want %d", v, inner.K())
	}
	if wrapped.Unwrap() != inner {
		t.Error("Unwrap did not return the inner handler")
	}
}
