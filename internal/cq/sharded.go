package cq

import (
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/obs/tracez"
	"repro/internal/stream"
	"repro/internal/window"
)

// shardOf maps a group key to one of n shards. The murmur-style finalizer
// scrambles low-entropy keys (sequential user ids, small enums) so the
// partitions stay balanced.
func shardOf(key uint64, n int) int {
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	return int(key % uint64(n))
}

// shardChunk is one shard's output for one released batch. ends[i] is
// len(results) after the batch's i-th step, so the merger can slice the
// chunk into per-step segments; each segment is already in key order
// (KeyedOp's canonical emission order). pos is the merger's cursor,
// valid only inside one mergeStep call.
type shardChunk struct {
	results []window.KeyedResult
	ends    []int32
	pos     int32
}

// seg returns the [lo, hi) bounds of the chunk's step-th segment.
func (c *shardChunk) seg(step int) (int32, int32) {
	lo := int32(0)
	if step > 0 {
		lo = c.ends[step-1]
	}
	return lo, c.ends[step]
}

// keyedShards executes a grouped query's window stage across n worker
// goroutines. Each worker owns the window.KeyedOp for its hash-partition
// of the key space and sees every released batch: tuples it owns go
// through Observe, foreign tuples only advance its shared clock (Advance),
// and marks/flushes are applied everywhere.
//
// Execution overlaps compute with merging: the engine dispatches batch
// n+1 to the workers while the merger is still interleaving batch n's
// chunks, so the (serial) merge does not stall the (parallel) window
// work. Each worker rotates between two result buffers; the unbuffered
// out channel makes the rotation safe — by the time the send of batch
// n+1's chunk completes, the merger has received it, which it only does
// after fully merging batch n, so the buffer batch n lived in is free to
// reuse for batch n+2.
type keyedShards struct {
	n        int
	in       []chan []released
	out      []chan shardChunk
	ops      []*window.KeyedOp
	counters []*obs.Counter
	tracer   *tracez.Tracer
	wg       sync.WaitGroup
	once     sync.Once
}

func newKeyedShards(q *AggQuery, n int, fail func(error)) *keyedShards {
	ks := &keyedShards{
		n:        n,
		in:       make([]chan []released, n),
		out:      make([]chan shardChunk, n),
		ops:      make([]*window.KeyedOp, n),
		counters: q.telem.shardCounters(n),
		tracer:   q.tracer,
	}
	for s := 0; s < n; s++ {
		ks.in[s] = make(chan []released, 1)
		ks.out[s] = make(chan shardChunk) // unbuffered: see buffer-rotation note above
		ks.ops[s] = window.NewKeyedOpWithCore(q.spec, q.agg, q.policy, q.refineFor, q.aggCore)
		ks.wg.Add(1)
		go ks.worker(s, fail)
	}
	return ks
}

// shardBuf is one of a worker's two rotating result buffers.
type shardBuf struct {
	results []window.KeyedResult
	ends    []int32
}

func (ks *keyedShards) worker(s int, fail func(error)) {
	defer ks.wg.Done()
	defer close(ks.out[s])
	op := ks.ops[s]
	var bufs [2]shardBuf
	cur := 0
	poisoned := false
	runBatch := func(batch []released, b *shardBuf) {
		defer func() {
			if p := recover(); p != nil {
				poisoned = true
				fail(fmt.Errorf("cq: window shard %d panicked: %v", s, p))
			}
		}()
		owned := 0
		var lastNow stream.Time
		for _, r := range batch {
			lastNow = r.now
			switch {
			case r.mark:
				// Stream mark: a bookkeeping step for the merger only.
			case r.flush:
				b.results = op.Flush(r.now, b.results)
			case shardOf(r.tuple.Key, ks.n) == s:
				b.results = op.Observe(r.tuple, r.now, b.results)
				owned++
			default:
				b.results = op.Advance(r.tuple.TS, r.now, b.results)
			}
			b.ends = append(b.ends, int32(len(b.results)))
		}
		if owned > 0 {
			if ks.counters != nil {
				ks.counters[s].Add(float64(owned))
			}
			ks.tracer.ShardBatch(int64(lastNow), s, owned)
		}
	}
	for batch := range ks.in[s] {
		b := &bufs[cur]
		cur ^= 1
		b.results, b.ends = b.results[:0], b.ends[:0]
		if !poisoned {
			runBatch(batch, b)
		}
		// Pad after a panic so the merger can still index every step.
		for len(b.ends) < len(batch) {
			var last int32
			if len(b.ends) > 0 {
				last = b.ends[len(b.ends)-1]
			}
			b.ends = append(b.ends, last)
		}
		ks.out[s] <- shardChunk{results: b.results, ends: b.ends}
	}
}

// dispatch hands one batch to every shard. It reports false when the
// pipeline is cancelled mid-dispatch; close() later unblocks any worker
// still holding a chunk.
func (ks *keyedShards) dispatch(done <-chan struct{}, batch []released) bool {
	for s := range ks.in {
		select {
		case ks.in[s] <- batch:
		case <-done:
			return false
		}
	}
	return true
}

// collect gathers one dispatched batch's chunk from every shard. The
// chunks' buffers are owned by the workers and stay valid only until the
// batch after the next one is dispatched (two-buffer rotation).
func (ks *keyedShards) collect(done <-chan struct{}, chunks []shardChunk) bool {
	for s := range ks.out {
		select {
		case c, ok := <-ks.out[s]:
			if !ok {
				return false
			}
			chunks[s] = c
		case <-done:
			return false
		}
	}
	return true
}

// close shuts the workers down: input channels are closed, any chunk still
// in flight is drained (a worker may be blocked handing over the output of
// a batch the merger abandoned), and the workers are joined. After close
// the per-shard operators are quiescent and opStats may be read.
func (ks *keyedShards) close() {
	ks.once.Do(func() {
		for _, c := range ks.in {
			close(c)
		}
		for _, c := range ks.out {
			for range c {
			}
		}
		ks.wg.Wait()
	})
}

// opStats sums the per-shard operator counters. Only valid after close.
func (ks *keyedShards) opStats() window.OpStats {
	var sum window.OpStats
	for _, op := range ks.ops {
		st := op.Stats()
		sum.TuplesIn += st.TuplesIn
		sum.LateTuples += st.LateTuples
		sum.LateDrops += st.LateDrops
		sum.LateRefined += st.LateRefined
		sum.Emitted += st.Emitted
		sum.Refinements += st.Refinements
		sum.EmptyEmitted += st.EmptyEmitted
	}
	return sum
}

// mergeStep appends step i's per-shard segments to out in the canonical
// by-key order. The shards partition the key space and each segment is
// already key-sorted, so a k-way merge of the segments — taking each
// key's contiguous run whole, which keeps a key's operator-emission
// order — reproduces exactly what a single KeyedOp would have emitted
// for this step. The shard count is small, so the merge scans the heads
// linearly instead of maintaining a heap.
func mergeStep(chunks []shardChunk, step int, out []window.KeyedResult) []window.KeyedResult {
	nonEmpty, last := 0, -1
	for s := range chunks {
		lo, hi := chunks[s].seg(step)
		chunks[s].pos = lo
		if hi > lo {
			nonEmpty++
			last = s
		}
	}
	switch nonEmpty {
	case 0:
		return out
	case 1:
		lo, hi := chunks[last].seg(step)
		return append(out, chunks[last].results[lo:hi]...)
	}
	for {
		minShard := -1
		var minKey uint64
		for s := range chunks {
			_, hi := chunks[s].seg(step)
			if chunks[s].pos >= hi {
				continue
			}
			if k := chunks[s].results[chunks[s].pos].Key; minShard < 0 || k < minKey {
				minShard, minKey = s, k
			}
		}
		if minShard < 0 {
			return out
		}
		c := &chunks[minShard]
		_, hi := c.seg(step)
		p := c.pos
		for p < hi && c.results[p].Key == minKey {
			p++
		}
		out = append(out, c.results[c.pos:p]...)
		c.pos = p
	}
}
