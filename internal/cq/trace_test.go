package cq

import (
	"context"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs/tracez"
	"repro/internal/resilience"
	"repro/internal/stream"
	"repro/internal/window"
)

// traceRun executes one traced synchronous run over tuples and returns
// the recorded events.
func traceRun(t *testing.T, tuples []stream.Tuple) []tracez.Event {
	t.Helper()
	rec := tracez.NewRecorder(1 << 15)
	tr := tracez.New(rec, "trace-test")
	spec := window.Spec{Size: 10 * stream.Second, Slide: stream.Second}
	_, err := New(stream.FromTuples(tuples)).
		Handle(core.NewAQKSlack(core.Config{Theta: 0.01, Spec: spec, Agg: window.Sum()})).
		Window(spec, window.Sum()).
		Trace(tr).
		Run()
	if err != nil {
		t.Fatal(err)
	}
	return rec.Events()
}

// TestTraceSyncDeterministic replays the same input through the
// synchronous executor twice and requires bit-identical traces: events
// carry stream-time positions only, so the digest must not move.
func TestTraceSyncDeterministic(t *testing.T) {
	tuples := gen.SensorBursty(20000, 3).Arrivals()
	d1 := tracez.Digest(traceRun(t, tuples))
	d2 := tracez.Digest(traceRun(t, tuples))
	if d1 == "" || d1 != d2 {
		t.Fatalf("trace digest not replay-stable: %q vs %q", d1, d2)
	}
}

// TestTraceSyncCoverage checks that one adaptive sync run leaves the
// full event family in the recorder: source-side inserts and releases,
// controller adaptations, quality samples, emits and the final flush.
func TestTraceSyncCoverage(t *testing.T) {
	events := traceRun(t, gen.SensorBursty(20000, 3).Arrivals())
	kinds := map[tracez.Kind]int{}
	for _, ev := range events {
		kinds[ev.Kind]++
	}
	for _, k := range []tracez.Kind{
		tracez.KindInsert, tracez.KindRelease, tracez.KindKSet,
		tracez.KindKAdapt, tracez.KindQuality, tracez.KindEmit, tracez.KindFlush,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %s events recorded", k)
		}
	}
}

// TestTraceConcurrentEmits cross-checks the traced concurrent engine
// against its own report: every emitted result must appear as a
// KindEmit event with matching window provenance fields.
func TestTraceConcurrentEmits(t *testing.T) {
	tuples := gen.Sensor(20000, 11).Arrivals()
	rec := tracez.NewRecorder(1 << 16)
	tr := tracez.New(rec, "emit-test")
	spec := window.Spec{Size: 10 * stream.Second, Slide: stream.Second}
	rep, err := New(stream.FromTuples(tuples)).
		Handle(buffer.NewKSlack(500)).
		Window(spec, window.Sum()).
		Trace(tr).
		RunConcurrent(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	emits := 0
	for _, ev := range rec.Events() {
		if ev.Kind == tracez.KindEmit {
			emits++
		}
	}
	if emits != len(rep.Results) {
		t.Errorf("emit events = %d, want %d (report results)", emits, len(rep.Results))
	}
	if len(rep.Results) == 0 {
		t.Fatal("no results emitted")
	}
	last := rep.Results[len(rep.Results)-1]
	p, ok := tr.ProvenanceFor(last.Idx)
	if !ok {
		t.Fatalf("no provenance for window %d", last.Idx)
	}
	if p.Count != last.Count || p.Start != int64(last.Start) || p.End != int64(last.End) {
		t.Errorf("provenance %+v does not match result %+v", p, last)
	}
}

// TestTraceWatchdogViolation injects delay-spike chaos into an adaptive
// query whose watchdog bound is effectively zero, and requires the
// quality-SLO machinery to fire end to end: the watchdog counts a
// violation, the tracer auto-dumps, and the dump names the violating
// window with its provenance (contributing count and K at seal).
func TestTraceWatchdogViolation(t *testing.T) {
	tuples := gen.Sensor(20000, 7).Arrivals()
	src := resilience.NewFaultSource(
		stream.AsErrSource(stream.FromTuples(tuples)),
		resilience.Chaos{Seed: 7, SpikeRate: 0.01, SpikeLen: 100},
	)
	rec := tracez.NewRecorder(1 << 15)
	tr := tracez.New(rec, "wd-test")
	wd := tracez.NewWatchdog(1e-9, nil)
	tr.SetWatchdog(wd)
	var dumps []tracez.Dump
	tr.OnDump(func(d tracez.Dump) { dumps = append(dumps, d) })

	spec := window.Spec{Size: 10 * stream.Second, Slide: stream.Second}
	_, err := NewFallible(src).
		Handle(core.NewAQKSlack(core.Config{Theta: 0.01, Spec: spec, Agg: window.Sum()})).
		Window(spec, window.Sum()).
		Trace(tr).
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if wd.Violations() == 0 {
		t.Fatal("watchdog observed no violations under spike chaos")
	}
	if len(dumps) == 0 {
		t.Fatal("no flight-recorder dump on quality violation")
	}
	// The watchdog dumps once per violation start; the last dump lines
	// up with its LastViolation record.
	d := dumps[len(dumps)-1]
	if d.Reason != "quality-violation" {
		t.Errorf("dump reason = %q, want quality-violation", d.Reason)
	}
	p, ok := tr.ProvenanceFor(d.Win)
	if !ok {
		t.Fatalf("violating window %d has no provenance", d.Win)
	}
	if p.Count <= 0 || p.KAtSeal < 0 {
		t.Errorf("provenance lacks seal state: %+v", p)
	}
	violNamed := false
	for _, ev := range d.Events {
		if ev.Kind == tracez.KindViolation && ev.Win == d.Win {
			violNamed = true
		}
	}
	if !violNamed {
		t.Errorf("dump does not contain a violation event naming window %d", d.Win)
	}
	if _, errv := wd.LastViolation(); errv <= 0 {
		t.Errorf("watchdog last violation error = %g, want > 0", errv)
	}
}

// TestLatencyBucketsFor checks the derived histogram ladder: strictly
// increasing, anchored below the slide, and reaching past the window
// size so straggler-dominated latencies still resolve.
func TestLatencyBucketsFor(t *testing.T) {
	spec := window.Spec{Size: 60 * stream.Second, Slide: 10 * stream.Second}
	b := LatencyBucketsFor(spec)
	if len(b) != 20 {
		t.Fatalf("got %d buckets, want 20", len(b))
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("buckets not strictly increasing at %d: %v", i, b)
		}
	}
	if b[0] > float64(spec.Slide) {
		t.Errorf("first bucket %g above the slide %d", b[0], spec.Slide)
	}
	if last := b[len(b)-1]; last < 2*float64(spec.Size) {
		t.Errorf("last bucket %g below 2x window size", last)
	}
	// Tiny windows must still produce a sane ladder starting at >= 1.
	small := LatencyBucketsFor(window.Spec{Size: 4, Slide: 2})
	if small[0] < 1 {
		t.Errorf("small-window ladder starts below 1: %g", small[0])
	}
	if small[len(small)-1] < 16 {
		t.Errorf("small-window ladder tops out at %g, want >= 16x the floor", small[len(small)-1])
	}
}
