package cq

import (
	"errors"

	"repro/internal/buffer"
	"repro/internal/join"
	"repro/internal/metrics"
	"repro/internal/stream"
)

// JoinQuery is a two-stream sliding-window join continuous query. The two
// sources are merged by arrival time; tuples must carry Src 0 (left) or
// Src 1 (right).
type JoinQuery struct {
	left, right stream.Source
	handler     buffer.Handler
	cfg         join.Config
	keepInput   bool
}

// NewJoin starts building a join query over two arrival-ordered sources.
func NewJoin(left, right stream.Source, cfg join.Config) *JoinQuery {
	return &JoinQuery{left: left, right: right, cfg: cfg}
}

// Handle sets the disorder handler applied to the merged stream. Defaults
// to no handling (K = 0).
func (q *JoinQuery) Handle(h buffer.Handler) *JoinQuery {
	q.handler = h
	return q
}

// KeepInput retains the input tuples per side for oracle computation.
func (q *JoinQuery) KeepInput() *JoinQuery {
	q.keepInput = true
	return q
}

// JoinReport is the outcome of executing a JoinQuery.
type JoinReport struct {
	Results     []join.Result
	Join        join.Stats
	Handler     buffer.Stats
	Left, Right []stream.Tuple // only when KeepInput was set
}

// OraclePairs computes ground-truth pairs; the query must have been built
// with KeepInput.
func (r *JoinReport) OraclePairs(cfg join.Config) map[metrics.Pair]struct{} {
	return join.OraclePairs(cfg, r.Left, r.Right)
}

// Quality compares emitted pairs against the oracle.
func (r *JoinReport) Quality(cfg join.Config) metrics.PairReport {
	return metrics.PairMetrics(join.PairSet(r.Results), r.OraclePairs(cfg))
}

// Run executes the join query synchronously. op is the join operator to
// drive; passing it in (rather than constructing it internally) lets
// callers share the operator with an adaptive handler's feedback hook
// (core.NewAQJoin takes op.Stats).
func (q *JoinQuery) Run(op *join.Join) (*JoinReport, error) {
	if q.left == nil || q.right == nil {
		return nil, errors.New("cq: join query needs two sources")
	}
	if op == nil {
		return nil, errors.New("cq: join query needs an operator")
	}
	handler := q.handler
	if handler == nil {
		handler = buffer.Zero()
	}
	rep := &JoinReport{}
	merged := stream.NewMerge(q.left, q.right)
	var rel []stream.Tuple
	var now stream.Time
	for {
		it, ok := merged.Next()
		if !ok {
			break
		}
		if !it.Heartbeat {
			t := it.Tuple
			if q.keepInput {
				if t.Src == 0 {
					rep.Left = append(rep.Left, t)
				} else {
					rep.Right = append(rep.Right, t)
				}
			}
			if t.Arrival > now {
				now = t.Arrival
			}
		} else if it.Watermark > now {
			now = it.Watermark
		}
		rel = handler.Insert(it, rel[:0])
		for _, t := range rel {
			rep.Results = op.Insert(join.Tagged{Tuple: t, Side: join.Side(t.Src)}, now, rep.Results)
		}
	}
	rel = handler.Flush(rel[:0])
	for _, t := range rel {
		rep.Results = op.Insert(join.Tagged{Tuple: t, Side: join.Side(t.Src)}, now, rep.Results)
	}
	rep.Join = op.Stats()
	rep.Handler = handler.Stats()
	return rep, nil
}
