package resilience

import (
	"testing"
	"time"

	"repro/internal/stream"
)

// tuples builds n arrival-ordered data tuples, one per millisecond.
func tuples(n int) []stream.Tuple {
	out := make([]stream.Tuple, n)
	for i := range out {
		ts := stream.Time(i)
		out[i] = stream.Tuple{TS: ts, Arrival: ts + 5, Seq: uint64(i), Value: float64(i)}
	}
	return out
}

func drain(t *testing.T, fs *FaultSource, retry bool) []stream.Item {
	t.Helper()
	var out []stream.Item
	for i := 0; ; i++ {
		if i > 1_000_000 {
			t.Fatal("source did not terminate")
		}
		it, ok, err := fs.NextErr()
		if err != nil {
			if !retry {
				t.Fatalf("unexpected error: %v", err)
			}
			continue
		}
		if !ok {
			return out
		}
		out = append(out, it)
	}
}

func TestFaultSourcePassThrough(t *testing.T) {
	in := tuples(100)
	fs := NewFaultSource(stream.AsErrSource(stream.FromTuples(in)), Chaos{})
	out := drain(t, fs, false)
	if len(out) != len(in) {
		t.Fatalf("got %d items, want %d", len(out), len(in))
	}
	for i, it := range out {
		if it.Tuple != in[i] {
			t.Fatalf("item %d mutated: %v != %v", i, it.Tuple, in[i])
		}
	}
	if st := fs.Stats(); st.Delivered != 100 || st.Errors != 0 || st.Duplicates != 0 {
		t.Fatalf("unexpected stats: %v", st)
	}
}

func TestFaultSourceDeterministicBySeed(t *testing.T) {
	cfg := Chaos{Seed: 42, ErrorRate: 0.05, DupRate: 0.05, SpikeRate: 0.01, SpikeLen: 8}
	run := func() ([]stream.Item, FaultStats) {
		fs := NewFaultSource(stream.AsErrSource(stream.FromTuples(tuples(2000))), cfg)
		return drain(t, fs, true), fs.Stats()
	}
	a, sa := run()
	b, sb := run()
	if sa != sb {
		t.Fatalf("stats differ across identical runs: %v vs %v", sa, sb)
	}
	if len(a) != len(b) {
		t.Fatalf("item counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("item %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	if sa.Errors == 0 || sa.Duplicates == 0 || sa.DelaySpikes == 0 {
		t.Fatalf("expected every fault type to fire: %v", sa)
	}
}

func TestFaultSourceErrorsAreTransient(t *testing.T) {
	in := tuples(500)
	fs := NewFaultSource(stream.AsErrSource(stream.FromTuples(in)), Chaos{Seed: 1, ErrorRate: 0.2})
	out := drain(t, fs, true)
	if len(out) != len(in) {
		t.Fatalf("errors consumed items: got %d, want %d", len(out), len(in))
	}
	if fs.Stats().Errors == 0 {
		t.Fatal("no errors injected at rate 0.2")
	}
	// Retrying around errors must preserve the item sequence exactly.
	for i, it := range out {
		if it.Tuple.Seq != in[i].Seq {
			t.Fatalf("sequence broken at %d: %v", i, it.Tuple)
		}
	}
}

func TestFaultSourceMaxErrors(t *testing.T) {
	fs := NewFaultSource(stream.AsErrSource(stream.FromTuples(tuples(1000))), Chaos{Seed: 3, ErrorRate: 0.5, MaxErrors: 7})
	drain(t, fs, true)
	if got := fs.Stats().Errors; got != 7 {
		t.Fatalf("Errors = %d, want capped at 7", got)
	}
}

func TestFaultSourceDuplicates(t *testing.T) {
	in := tuples(1000)
	fs := NewFaultSource(stream.AsErrSource(stream.FromTuples(in)), Chaos{Seed: 5, DupRate: 0.1})
	out := drain(t, fs, false)
	st := fs.Stats()
	if st.Duplicates == 0 {
		t.Fatal("no duplicates at rate 0.1")
	}
	if len(out) != len(in)+int(st.Duplicates) {
		t.Fatalf("got %d items, want %d + %d dups", len(out), len(in), st.Duplicates)
	}
	assertArrivalOrdered(t, out)
}

func TestFaultSourceDelaySpikes(t *testing.T) {
	in := tuples(5000)
	fs := NewFaultSource(stream.AsErrSource(stream.FromTuples(in)), Chaos{Seed: 9, SpikeRate: 0.01, SpikeLen: 16})
	out := drain(t, fs, false)
	st := fs.Stats()
	if st.DelaySpikes == 0 {
		t.Fatal("no spikes at rate 0.01")
	}
	if len(out) != len(in) {
		t.Fatalf("spikes lost tuples: got %d, want %d", len(out), len(in))
	}
	seen := make(map[uint64]bool, len(out))
	lateness := 0
	var maxTS stream.Time = -1
	for _, it := range out {
		if seen[it.Tuple.Seq] {
			t.Fatalf("seq %d delivered twice", it.Tuple.Seq)
		}
		seen[it.Tuple.Seq] = true
		if it.Tuple.TS < maxTS {
			lateness++
		} else {
			maxTS = it.Tuple.TS
		}
	}
	if lateness == 0 {
		t.Fatal("delay spikes produced no event-time disorder")
	}
	assertArrivalOrdered(t, out)
}

func TestFaultSourcePrematureEOF(t *testing.T) {
	fs := NewFaultSource(stream.AsErrSource(stream.FromTuples(tuples(1000))), Chaos{CutAfter: 250})
	out := drain(t, fs, false)
	if len(out) != 250 {
		t.Fatalf("got %d items, want 250", len(out))
	}
	if !fs.Stats().Truncated {
		t.Fatal("Truncated not recorded")
	}
}

func TestFaultSourceStalls(t *testing.T) {
	fs := NewFaultSource(stream.AsErrSource(stream.FromTuples(tuples(200))),
		Chaos{Seed: 2, StallRate: 0.1, StallDur: 100 * time.Microsecond})
	start := time.Now()
	drain(t, fs, false)
	st := fs.Stats()
	if st.Stalls == 0 {
		t.Fatal("no stalls at rate 0.1")
	}
	if time.Since(start) < time.Duration(st.Stalls)*100*time.Microsecond {
		t.Fatalf("stalls did not consume wall time (%d stalls in %v)", st.Stalls, time.Since(start))
	}
}

func assertArrivalOrdered(t *testing.T, items []stream.Item) {
	t.Helper()
	var prev stream.Time = -1
	for i, it := range items {
		if arr := it.Tuple.Arrival; arr < prev {
			t.Fatalf("arrival order broken at %d: %d < %d", i, arr, prev)
		} else {
			prev = arr
		}
	}
}

func TestParseChaos(t *testing.T) {
	c, err := ParseChaos("seed=7,err=0.01,stall=0.001,stalldur=5ms,dup=0.005,spike=0.001,spikelen=32,cut=100")
	if err != nil {
		t.Fatal(err)
	}
	want := Chaos{Seed: 7, ErrorRate: 0.01, StallRate: 0.001, StallDur: 5 * time.Millisecond,
		DupRate: 0.005, SpikeRate: 0.001, SpikeLen: 32, CutAfter: 100}
	if c != want {
		t.Fatalf("ParseChaos = %+v, want %+v", c, want)
	}
	if !c.Enabled() {
		t.Fatal("parsed config should be enabled")
	}
	if c, err := ParseChaos(""); err != nil || c.Enabled() {
		t.Fatalf("empty spec: %+v, %v", c, err)
	}
	for _, bad := range []string{"nope", "zap=1", "err=x"} {
		if _, err := ParseChaos(bad); err == nil {
			t.Fatalf("ParseChaos(%q) accepted", bad)
		}
	}
}
