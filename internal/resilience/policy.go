package resilience

import "fmt"

// OverloadPolicy decides what a bounded ingest queue does when it is full.
// Block preserves every tuple at the cost of backpressure all the way to
// the source; the shedding policies trade tuples for liveness and account
// for the loss in the reported quality metrics instead of hiding it.
type OverloadPolicy int

const (
	// Block applies backpressure: the producer waits for queue space.
	Block OverloadPolicy = iota
	// ShedNewest drops the incoming tuple when the queue is full.
	ShedNewest
	// ShedLate drops the incoming tuple only if it is late (its event
	// time is behind the stream clock); on-time tuples block instead.
	// Late tuples are the cheapest to lose: they carry the smallest
	// marginal quality contribution under slack-based compensation.
	ShedLate
)

// String names the policy (the aqserver flag syntax).
func (p OverloadPolicy) String() string {
	switch p {
	case ShedNewest:
		return "shed-newest"
	case ShedLate:
		return "shed-late"
	default:
		return "block"
	}
}

// ParseOverloadPolicy parses the flag syntax accepted by aqserver.
func ParseOverloadPolicy(s string) (OverloadPolicy, error) {
	switch s {
	case "", "block":
		return Block, nil
	case "shed-newest", "shed":
		return ShedNewest, nil
	case "shed-late":
		return ShedLate, nil
	}
	return Block, fmt.Errorf("resilience: unknown overload policy %q (want block, shed-newest or shed-late)", s)
}
