package resilience

import (
	"os"

	"repro/internal/stats"
)

// File-level fault injection for durability testing: the two ways a crash
// (or the disk under it) damages a log tail. Both are deterministic given
// their arguments, so DST crash plans replay byte-identically.

// TruncateTail shears the last n bytes off the file at path — the torn
// write a power cut leaves when only part of an appended frame reached the
// platter. Truncating past the start leaves an empty file rather than
// failing, matching what a crash during the file's first write produces.
func TruncateTail(path string, n int64) error {
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := st.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}

// CorruptTail flips one random bit within the last span bytes of the file
// — partial-sector damage under an interrupted write. The position and bit
// are drawn from seed, so the same (path size, span, seed) always damages
// the same byte.
func CorruptTail(path string, span int64, seed uint64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	if size == 0 {
		return nil
	}
	if span <= 0 || span > size {
		span = size
	}
	rng := stats.NewRNG(seed)
	off := size - span + int64(rng.Intn(int(span)))
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 1 << uint(rng.Intn(8))
	if _, err := f.WriteAt(b[:], off); err != nil {
		return err
	}
	return f.Sync()
}
