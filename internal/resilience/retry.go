package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/internal/stream"
)

// Retry configures exponential backoff with jitter and an optional
// circuit breaker. The zero value is usable: 5 attempts, 10ms base delay
// doubling to a 1s cap, ±20% jitter, breaker disabled.
type Retry struct {
	MaxAttempts int           // total attempts per operation; 0 = 5
	BaseDelay   time.Duration // delay after the first failure; 0 = 10ms
	MaxDelay    time.Duration // backoff cap; 0 = 1s
	Multiplier  float64       // backoff growth factor; 0 = 2
	Jitter      float64       // ± fraction of the delay; 0 = 0.2, negative = none
	Seed        uint64        // jitter RNG seed, for reproducible schedules

	// BreakerThreshold consecutive failures open the circuit for
	// BreakerCooldown, during which calls fail fast with ErrCircuitOpen.
	// Zero threshold disables the breaker.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// Clock provides the time source for backoff sleeps and breaker
	// cooldowns. Nil means WallClock; the deterministic simulation
	// harness injects a virtual clock here so retry schedules replay
	// identically without wall-clock delays.
	Clock Clock

	// OnRetry, when set, is invoked after each failed attempt that will
	// be retried (attempt numbers start at 1). Used by the executors to
	// mirror retries into the flight recorder; keep it cheap and
	// non-blocking.
	OnRetry func(attempt int, err error)

	// OnBreakerTrip, when set, fires on each closed→open breaker
	// transition observed by a RetryingSource.
	OnBreakerTrip func()
}

func (r Retry) withDefaults() Retry {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 5
	}
	if r.BaseDelay <= 0 {
		r.BaseDelay = 10 * time.Millisecond
	}
	if r.MaxDelay <= 0 {
		r.MaxDelay = time.Second
	}
	if r.Multiplier <= 1 {
		r.Multiplier = 2
	}
	switch {
	case r.Jitter == 0:
		r.Jitter = 0.2
	case r.Jitter < 0:
		r.Jitter = 0
	}
	if r.BreakerCooldown <= 0 {
		r.BreakerCooldown = time.Second
	}
	r.Clock = orWall(r.Clock)
	return r
}

// backoff returns the sleep before attempt n (n = 1 after the first
// failure), with jitter drawn from rng.
func (r Retry) backoff(n int, rng *stats.RNG) time.Duration {
	d := float64(r.BaseDelay)
	for i := 1; i < n; i++ {
		d *= r.Multiplier
		if d >= float64(r.MaxDelay) {
			break
		}
	}
	if d > float64(r.MaxDelay) {
		d = float64(r.MaxDelay)
	}
	if r.Jitter > 0 {
		d *= 1 + r.Jitter*(2*rng.Float64()-1)
	}
	return time.Duration(d)
}

// Do runs op, retrying per the config until it succeeds, attempts run out,
// or ctx is cancelled. The returned error wraps the last failure.
func (r Retry) Do(ctx context.Context, op func() error) error {
	r = r.withDefaults()
	rng := stats.NewRNG(r.Seed)
	var err error
	for attempt := 1; ; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		if attempt >= r.MaxAttempts {
			return fmt.Errorf("resilience: gave up after %d attempts: %w", attempt, err)
		}
		if serr := r.Clock.Sleep(ctx, r.backoff(attempt, rng)); serr != nil {
			return serr
		}
	}
}

// ErrCircuitOpen is returned (wrapped) while a breaker is open.
var ErrCircuitOpen = errors.New("resilience: circuit breaker open")

// BreakerState enumerates the classic three circuit-breaker states.
type BreakerState int

const (
	BreakerClosed   BreakerState = iota // normal operation
	BreakerOpen                         // failing fast until the cooldown passes
	BreakerHalfOpen                     // cooldown passed; one probe allowed
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a small consecutive-failure circuit breaker. It is not
// goroutine-safe; each pipeline stage owns its own.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	fails    int
	openedAt time.Time
	open     bool
	probing  bool
	trips    atomic.Int64 // closed→open transitions; atomic so monitors can read it live
}

// NewBreaker returns a breaker that opens after threshold consecutive
// failures and stays open for cooldown. threshold <= 0 yields 5;
// cooldown <= 0 yields 1s.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a call may proceed. While open it returns false
// until the cooldown elapses, then admits a single half-open probe.
func (b *Breaker) Allow() bool {
	if !b.open {
		return true
	}
	if b.now().Sub(b.openedAt) < b.cooldown {
		return false
	}
	if b.probing {
		return false // one probe in flight already
	}
	b.probing = true
	return true
}

// State returns the breaker's current state.
func (b *Breaker) State() BreakerState {
	switch {
	case !b.open:
		return BreakerClosed
	case b.now().Sub(b.openedAt) >= b.cooldown:
		return BreakerHalfOpen
	default:
		return BreakerOpen
	}
}

// Success records a successful call and closes the breaker.
func (b *Breaker) Success() {
	b.fails = 0
	b.open = false
	b.probing = false
}

// Failure records a failed call, opening (or re-opening) the breaker once
// the consecutive-failure threshold is reached.
func (b *Breaker) Failure() {
	b.fails++
	if b.probing || b.fails >= b.threshold {
		if !b.open {
			b.trips.Add(1)
		}
		b.open = true
		b.probing = false
		b.openedAt = b.now()
	}
}

// Trips counts closed→open transitions. Unlike the rest of Breaker it is
// safe to read from other goroutines, so monitoring can export it while
// the owning stage keeps running.
func (b *Breaker) Trips() int64 { return b.trips.Load() }

// RetryingSource wraps a fallible source with a Retry policy: transient
// NextErr failures are retried with backoff (and optionally gated by a
// circuit breaker) before surfacing a terminal error to the pipeline.
// Retries() exposes how many retry attempts were spent, so executors can
// report them.
type RetryingSource struct {
	ctx     context.Context
	src     stream.ErrSource
	retry   Retry
	breaker *Breaker
	rng     *stats.RNG
	retries atomic.Int64
}

// NewRetryingSource wraps src. ctx bounds the backoff sleeps — cancelling
// it aborts an in-progress retry loop with the context's error. The retry
// config's Clock (WallClock by default) times both the backoff sleeps and
// the breaker cooldown.
func NewRetryingSource(ctx context.Context, src stream.ErrSource, retry Retry) *RetryingSource {
	retry = retry.withDefaults()
	s := &RetryingSource{ctx: ctx, src: src, retry: retry, rng: stats.NewRNG(retry.Seed)}
	if retry.BreakerThreshold > 0 {
		s.breaker = NewBreaker(retry.BreakerThreshold, retry.BreakerCooldown)
		s.breaker.now = retry.Clock.Now
	}
	return s
}

// Retries returns the number of retry attempts performed so far. It is
// safe to read from another goroutine.
func (s *RetryingSource) Retries() int64 { return s.retries.Load() }

// BreakerTrips returns how many times the source's circuit breaker has
// opened (0 when the policy runs without a breaker). Safe to read from
// another goroutine.
func (s *RetryingSource) BreakerTrips() int64 {
	if s.breaker == nil {
		return 0
	}
	return s.breaker.Trips()
}

// NextErr implements stream.ErrSource. It returns an error only when the
// retry budget is exhausted or the breaker refuses the call.
func (s *RetryingSource) NextErr() (stream.Item, bool, error) {
	var last error
	for attempt := 1; ; attempt++ {
		if s.breaker != nil && !s.breaker.Allow() {
			if last == nil {
				return stream.Item{}, false, ErrCircuitOpen
			}
			return stream.Item{}, false, fmt.Errorf("%w (last error: %v)", ErrCircuitOpen, last)
		}
		it, ok, err := s.src.NextErr()
		if err == nil {
			if s.breaker != nil {
				s.breaker.Success()
			}
			return it, ok, nil
		}
		last = err
		if s.breaker != nil {
			t0 := s.breaker.Trips()
			s.breaker.Failure()
			if s.retry.OnBreakerTrip != nil && s.breaker.Trips() > t0 {
				s.retry.OnBreakerTrip()
			}
		}
		if attempt >= s.retry.MaxAttempts {
			return stream.Item{}, false, fmt.Errorf("resilience: source failed after %d attempts: %w", attempt, err)
		}
		s.retries.Add(1)
		if s.retry.OnRetry != nil {
			s.retry.OnRetry(attempt, err)
		}
		if serr := s.retry.Clock.Sleep(s.ctx, s.retry.backoff(attempt, s.rng)); serr != nil {
			return stream.Item{}, false, serr
		}
	}
}
