package resilience

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/stream"
)

func TestRetryDoSucceedsAfterFailures(t *testing.T) {
	calls := 0
	err := Retry{MaxAttempts: 5, BaseDelay: time.Microsecond, Jitter: -1}.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestRetryDoGivesUp(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := Retry{MaxAttempts: 4, BaseDelay: time.Microsecond}.Do(context.Background(), func() error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v, want wrapped boom", err)
	}
	if calls != 4 {
		t.Fatalf("calls=%d, want 4", calls)
	}
}

func TestRetryDoHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Retry{MaxAttempts: 10, BaseDelay: time.Hour}.Do(ctx, func() error { return errors.New("x") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
}

func TestBackoffGrowthAndCap(t *testing.T) {
	r := Retry{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Jitter: -1}.withDefaults()
	rng := stats.NewRNG(0)
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := r.backoff(i+1, rng); got != w*time.Millisecond {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	r := Retry{BaseDelay: 100 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Jitter: 0.5}.withDefaults()
	rng := stats.NewRNG(1)
	for i := 0; i < 1000; i++ {
		d := r.backoff(3, rng)
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered backoff %v outside ±50%% of 100ms", d)
		}
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(3, time.Second)
	b.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker refused a call")
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %v before threshold", b.State())
	}
	b.Failure() // third consecutive failure: opens
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after threshold, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call")
	}

	now = now.Add(2 * time.Second) // cooldown passes: half-open
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v after cooldown, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker allowed a second concurrent probe")
	}
	b.Failure() // probe fails: re-opens with a fresh cooldown
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatalf("failed probe did not re-open (state %v)", b.State())
	}

	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatalf("successful probe did not close (state %v)", b.State())
	}
}

func TestBreakerStateString(t *testing.T) {
	for s, want := range map[BreakerState]string{BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open"} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}

// flaky fails with err for the first failN calls at each position.
type flaky struct {
	src    stream.ErrSource
	failN  int
	fails  int
	broken bool // permanently failing
}

func (f *flaky) NextErr() (stream.Item, bool, error) {
	if f.broken {
		return stream.Item{}, false, errors.New("permanently broken")
	}
	if f.fails < f.failN {
		f.fails++
		return stream.Item{}, false, errors.New("flaky")
	}
	f.fails = 0
	return f.src.NextErr()
}

func TestRetryingSourceRecovers(t *testing.T) {
	in := tuples(50)
	rs := NewRetryingSource(context.Background(),
		&flaky{src: stream.AsErrSource(stream.FromTuples(in)), failN: 2},
		Retry{MaxAttempts: 4, BaseDelay: time.Microsecond})
	var n int
	for {
		it, ok, err := rs.NextErr()
		if err != nil {
			t.Fatalf("terminal error: %v", err)
		}
		if !ok {
			break
		}
		if it.Tuple.Seq != uint64(n) {
			t.Fatalf("out of sequence at %d: %v", n, it.Tuple)
		}
		n++
	}
	if n != len(in) {
		t.Fatalf("delivered %d, want %d", n, len(in))
	}
	// Every position (including EOF) needed 2 retries.
	if got := rs.Retries(); got != int64(2*(len(in)+1)) {
		t.Fatalf("Retries = %d, want %d", got, 2*(len(in)+1))
	}
}

func TestRetryingSourceExhaustsBudget(t *testing.T) {
	rs := NewRetryingSource(context.Background(), &flaky{broken: true},
		Retry{MaxAttempts: 3, BaseDelay: time.Microsecond})
	_, _, err := rs.NextErr()
	if err == nil || rs.Retries() != 2 {
		t.Fatalf("err=%v retries=%d", err, rs.Retries())
	}
}

func TestRetryingSourceBreakerFailsFast(t *testing.T) {
	rs := NewRetryingSource(context.Background(), &flaky{broken: true},
		Retry{MaxAttempts: 10, BaseDelay: time.Microsecond,
			BreakerThreshold: 3, BreakerCooldown: time.Hour})
	_, _, err := rs.NextErr()
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err=%v, want ErrCircuitOpen", err)
	}
	// Subsequent calls fail fast without touching the source.
	if _, _, err := rs.NextErr(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second call err=%v, want ErrCircuitOpen", err)
	}
}

func TestParseOverloadPolicy(t *testing.T) {
	for s, want := range map[string]OverloadPolicy{
		"": Block, "block": Block, "shed": ShedNewest, "shed-newest": ShedNewest, "shed-late": ShedLate,
	} {
		got, err := ParseOverloadPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseOverloadPolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() == "" {
			t.Fatalf("empty String for %v", got)
		}
	}
	if _, err := ParseOverloadPolicy("drop-all"); err == nil {
		t.Fatal("bad policy accepted")
	}
}
