// Package resilience hardens the continuous-query pipeline against the
// failure modes a deployed stream processor actually meets: flaky sources,
// stalls, duplicate delivery, delay-spike bursts, overload, and stage
// panics.
//
// It has two halves. The fault-injection half (Chaos, FaultSource) wraps
// any stream source and injects failures deterministically by seed, so
// chaos runs are reproducible in tests and via aqserver's -chaos flag. The
// recovery half (Retry, Breaker, RetryingSource, OverloadPolicy) is the
// machinery the pipeline uses to survive those faults: exponential-backoff
// retries behind a small circuit breaker, and bounded ingest with explicit
// load-shedding policies whose drops are folded into the realized-quality
// accounting instead of being hidden.
package resilience

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/stats"
	"repro/internal/stream"
)

// Chaos configures deterministic fault injection for a FaultSource. All
// rates are per-call probabilities in [0, 1]; the zero value injects
// nothing. Faults are drawn from a private RNG derived from Seed, so the
// same (source, Chaos) pair always yields the same fault schedule.
type Chaos struct {
	Seed uint64

	// ErrorRate is the probability that a NextErr call fails with a
	// transient error instead of delivering an item. Errors never consume
	// an item: the next call retries the same position.
	ErrorRate float64
	// MaxErrors caps the total number of injected errors (0 = unlimited).
	MaxErrors int64

	// StallRate is the probability that delivering an item first stalls
	// the caller for StallDur of wall time (a slow or wedged upstream).
	StallRate float64
	StallDur  time.Duration

	// DupRate is the probability that the previously delivered data tuple
	// is delivered again (at-least-once upstream semantics). Duplicates
	// are re-stamped to the current max arrival so arrival order holds.
	DupRate float64

	// SpikeRate is the probability that a delay-spike burst starts: the
	// next SpikeLen data tuples are held back and re-delivered afterwards
	// with their arrival time bumped to the then-current maximum — they
	// arrive in order but late in event time, the disorder pattern a
	// network buffer flush produces. SpikeLen defaults to 16.
	SpikeRate float64
	SpikeLen  int

	// CutAfter ends the stream prematurely after this many delivered
	// items (0 = disabled) — a source that dies mid-stream.
	CutAfter int64
}

// Enabled reports whether the config injects anything at all.
func (c Chaos) Enabled() bool {
	return c.ErrorRate > 0 || c.StallRate > 0 || c.DupRate > 0 || c.SpikeRate > 0 || c.CutAfter > 0
}

// ParseChaos parses the aqserver -chaos flag syntax: a comma-separated
// list of key=value pairs, e.g.
//
//	seed=7,err=0.01,stall=0.001,stalldur=5ms,dup=0.005,spike=0.001,spikelen=32,cut=100000
//
// Unknown keys are rejected so typos fail loudly.
func ParseChaos(s string) (Chaos, error) {
	var c Chaos
	if strings.TrimSpace(s) == "" {
		return c, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return c, fmt.Errorf("resilience: chaos spec %q: want key=value", kv)
		}
		var err error
		switch k {
		case "seed":
			c.Seed, err = strconv.ParseUint(v, 10, 64)
		case "err":
			c.ErrorRate, err = strconv.ParseFloat(v, 64)
		case "maxerr":
			c.MaxErrors, err = strconv.ParseInt(v, 10, 64)
		case "stall":
			c.StallRate, err = strconv.ParseFloat(v, 64)
		case "stalldur":
			c.StallDur, err = time.ParseDuration(v)
		case "dup":
			c.DupRate, err = strconv.ParseFloat(v, 64)
		case "spike":
			c.SpikeRate, err = strconv.ParseFloat(v, 64)
		case "spikelen":
			c.SpikeLen, err = strconv.Atoi(v)
		case "cut":
			c.CutAfter, err = strconv.ParseInt(v, 10, 64)
		default:
			return c, fmt.Errorf("resilience: chaos spec: unknown key %q", k)
		}
		if err != nil {
			return c, fmt.Errorf("resilience: chaos spec %q: %v", kv, err)
		}
	}
	return c, nil
}

// FaultStats counts the faults a FaultSource actually injected.
type FaultStats struct {
	Delivered   int64 // items handed to the consumer
	Errors      int64 // transient errors returned
	Stalls      int64 // wall-clock stalls served
	Duplicates  int64 // duplicate tuples delivered
	DelaySpikes int64 // spike bursts started
	Truncated   bool  // stream was cut by CutAfter
}

// String renders the counters.
func (s FaultStats) String() string {
	return fmt.Sprintf("faults{out=%d err=%d stall=%d dup=%d spike=%d cut=%v}",
		s.Delivered, s.Errors, s.Stalls, s.Duplicates, s.DelaySpikes, s.Truncated)
}

// FaultSource wraps a stream source and injects the faults described by a
// Chaos config, deterministically by seed. It implements stream.ErrSource;
// transient errors leave the underlying position untouched so a retrying
// caller makes progress.
type FaultSource struct {
	src   stream.ErrSource
	cfg   Chaos
	rng   *stats.RNG
	clock Clock

	st         FaultStats
	prev       stream.Tuple // last delivered data tuple, for duplication
	hasPrev    bool
	maxArrival stream.Time
	holding    int           // tuples still to capture into the open burst
	held       []stream.Item // captured burst, awaiting release
	replay     []stream.Item // burst being re-delivered
}

// NewFaultSource wraps src with the given chaos config. A zero config
// passes everything through untouched (but still counts Delivered).
func NewFaultSource(src stream.ErrSource, cfg Chaos) *FaultSource {
	if cfg.SpikeLen <= 0 {
		cfg.SpikeLen = 16
	}
	return &FaultSource{src: src, cfg: cfg, rng: stats.NewRNG(cfg.Seed), clock: WallClock{}}
}

// WithClock substitutes the clock that serves stall faults (WallClock by
// default) and returns the source. The fault schedule itself is purely
// RNG-driven, so swapping the clock changes where the stall time comes
// from — wall sleeps in production, instant virtual-time advances under
// the deterministic simulation harness — without changing which calls
// stall.
func (f *FaultSource) WithClock(c Clock) *FaultSource {
	f.clock = orWall(c)
	return f
}

// Stats returns the faults injected so far.
func (f *FaultSource) Stats() FaultStats { return f.st }

// NextErr implements stream.ErrSource.
func (f *FaultSource) NextErr() (stream.Item, bool, error) {
	if f.cfg.CutAfter > 0 && f.st.Delivered >= f.cfg.CutAfter {
		f.st.Truncated = true
		return stream.Item{}, false, nil
	}
	if f.cfg.ErrorRate > 0 && f.rng.Float64() < f.cfg.ErrorRate &&
		(f.cfg.MaxErrors == 0 || f.st.Errors < f.cfg.MaxErrors) {
		f.st.Errors++
		return stream.Item{}, false, fmt.Errorf("resilience: injected transient fault #%d", f.st.Errors)
	}
	if f.cfg.StallRate > 0 && f.rng.Float64() < f.cfg.StallRate {
		f.st.Stalls++
		f.clock.Sleep(nil, f.cfg.StallDur)
	}
	if f.hasPrev && f.cfg.DupRate > 0 && f.rng.Float64() < f.cfg.DupRate {
		f.st.Duplicates++
		dup := f.prev
		dup.Arrival = f.maxArrival // keep the stream arrival-ordered
		return f.deliver(stream.DataItem(dup)), true, nil
	}
	if len(f.replay) > 0 {
		return f.popReplay(), true, nil
	}
	for {
		it, ok, err := f.src.NextErr()
		if err != nil {
			return stream.Item{}, false, err
		}
		if !ok {
			// Flush any open or closed burst before ending the stream.
			f.replay = append(f.replay, f.held...)
			f.held, f.holding = nil, 0
			if len(f.replay) > 0 {
				return f.popReplay(), true, nil
			}
			return stream.Item{}, false, nil
		}
		if f.holding > 0 && !it.Heartbeat {
			f.held = append(f.held, it)
			f.holding--
			if f.holding == 0 {
				f.replay, f.held = f.held, nil
			}
			continue
		}
		if !it.Heartbeat && f.cfg.SpikeRate > 0 && f.rng.Float64() < f.cfg.SpikeRate {
			f.st.DelaySpikes++
			f.holding = f.cfg.SpikeLen - 1
			f.held = append(f.held, it)
			if f.holding == 0 {
				f.replay, f.held = f.held, nil
			}
			continue
		}
		return f.deliver(it), true, nil
	}
}

// popReplay delivers the next item of a burst being re-released, bumping
// its arrival to the present so the stream stays arrival-ordered.
func (f *FaultSource) popReplay() stream.Item {
	it := f.replay[0]
	f.replay = f.replay[1:]
	if !it.Heartbeat && it.Tuple.Arrival < f.maxArrival {
		it.Tuple.Arrival = f.maxArrival // delayed delivery: arrives now
	}
	return f.deliver(it)
}

// deliver updates delivery bookkeeping and returns the item.
func (f *FaultSource) deliver(it stream.Item) stream.Item {
	f.st.Delivered++
	if it.Heartbeat {
		if it.Watermark > f.maxArrival {
			f.maxArrival = it.Watermark
		}
		return it
	}
	if it.Tuple.Arrival > f.maxArrival {
		f.maxArrival = it.Tuple.Arrival
	}
	f.prev, f.hasPrev = it.Tuple, true
	return it
}
