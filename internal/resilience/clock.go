package resilience

import (
	"context"
	"time"
)

// Clock abstracts the passage of time for everything in the pipeline that
// waits: fault-injection stalls, retry backoff and circuit-breaker
// cooldowns. Production code runs on WallClock; the deterministic
// simulation harness (internal/dst) substitutes a virtual clock whose
// Sleep advances simulated time instantly, so the exact same retry and
// chaos code paths execute without consuming wall time — one code path
// for simulated and production time.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep waits for d, returning early with ctx's error if the context
	// is cancelled first. A nil ctx means "not cancellable".
	Sleep(ctx context.Context, d time.Duration) error
}

// WallClock is the production Clock: real time.Now and timer-based sleeps.
type WallClock struct{}

// Now implements Clock.
func (WallClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (WallClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	if ctx == nil {
		<-t.C
		return nil
	}
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// orWall returns c, or WallClock when c is nil — the defaulting rule every
// clock-accepting config in this package shares.
func orWall(c Clock) Clock {
	if c == nil {
		return WallClock{}
	}
	return c
}
