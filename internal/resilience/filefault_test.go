package resilience

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestTruncateTail(t *testing.T) {
	p := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(p, bytes.Repeat([]byte{0xab}, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TruncateTail(p, 30); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(p)
	if len(b) != 70 {
		t.Fatalf("size = %d, want 70", len(b))
	}
	// Truncating past the start leaves an empty file, not an error.
	if err := TruncateTail(p, 1000); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(p); len(b) != 0 {
		t.Fatalf("size = %d, want 0", len(b))
	}
}

func TestCorruptTailDeterministic(t *testing.T) {
	mk := func() string {
		p := filepath.Join(t.TempDir(), "f")
		if err := os.WriteFile(p, bytes.Repeat([]byte{0x55}, 256), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1, p2 := mk(), mk()
	if err := CorruptTail(p1, 64, 42); err != nil {
		t.Fatal(err)
	}
	if err := CorruptTail(p2, 64, 42); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(p1)
	b2, _ := os.ReadFile(p2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("same seed produced different damage")
	}
	orig := bytes.Repeat([]byte{0x55}, 256)
	if bytes.Equal(b1, orig) {
		t.Fatal("no damage applied")
	}
	diff := 0
	for i := range b1 {
		if b1[i] != orig[i] {
			diff++
			if i < 256-64 {
				t.Fatalf("damage at offset %d, outside the last 64 bytes", i)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes damaged, want exactly 1", diff)
	}
	// Empty files are a no-op.
	empty := filepath.Join(t.TempDir(), "e")
	os.WriteFile(empty, nil, 0o644)
	if err := CorruptTail(empty, 10, 1); err != nil {
		t.Fatal(err)
	}
}
