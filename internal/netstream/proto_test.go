package netstream

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/stream"
)

func TestAppendParseRoundTrip(t *testing.T) {
	items := []stream.Item{
		stream.DataItem(stream.Tuple{TS: 10, Arrival: 25, Seq: 0, Key: 0, Value: 1}),
		stream.DataItem(stream.Tuple{TS: -5, Arrival: 3, Seq: 18446744073709551615, Key: 7, Src: 255, Value: -123.456}),
		stream.DataItem(stream.Tuple{TS: 1 << 50, Arrival: 1<<50 + 3, Seq: 42, Key: 9999, Src: 1, Value: math.MaxFloat64}),
		stream.DataItem(stream.Tuple{TS: 0, Arrival: 0, Seq: 1, Value: 0.1}),
		stream.HeartbeatItem(123456),
		stream.HeartbeatItem(-1),
	}
	for _, it := range items {
		line := AppendItem(nil, it)
		if line[len(line)-1] != '\n' {
			t.Fatalf("frame not newline-terminated: %q", line)
		}
		f, err := ParseLine(line[:len(line)-1])
		if err != nil {
			t.Fatalf("ParseLine(%q): %v", line, err)
		}
		if f.Item != it {
			t.Fatalf("round trip mismatch: sent %+v got %+v", it, f.Item)
		}
		if it.Heartbeat && f.Kind != FrameHeartbeat || !it.Heartbeat && f.Kind != FrameData {
			t.Fatalf("wrong kind %v for %+v", f.Kind, it)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	line := AppendHello(nil, "sensors.west", "acme-corp")
	f, err := ParseLine(bytes.TrimSuffix(line, []byte("\n")))
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != FrameHello || f.Source != "sensors.west" || f.Tenant != "acme-corp" {
		t.Fatalf("hello mismatch: %+v", f)
	}
	f, err = ParseLine(bytes.TrimSuffix(AppendHello(nil, "s1", ""), []byte("\n")))
	if err != nil || f.Tenant != "" || f.Source != "s1" {
		t.Fatalf("tenantless hello mismatch: %+v err=%v", f, err)
	}
}

func TestParseLineRejectsMalformed(t *testing.T) {
	bad := []string{
		"D 1 2 3",                                // too few fields
		"D 1 2 3 4 5 6 7",                        // too many fields
		"D x 2 3 4 5 6",                          // bad ts
		"D 1 2 3 4 999 6",                        // src out of uint8 range
		"D 1 2 3 4 5 notafloat",                  // bad value
		"D 1  2 3 4 5 6",                         // double space
		" D 1 2 3 4 5 6",                         // leading space
		"H",                                      // missing watermark
		"H abc",                                  // bad watermark
		"S",                                      // missing source
		"S two words extra",                      // too many fields
		"S bad/name",                             // invalid source character
		"S ok bad/tenant",                        // invalid tenant character
		"X 1 2",                                  // unknown frame type
		"d 1 2 3 4 5 6",                          // frame types are case-sensitive
		"S " + strings.Repeat("a", MaxNameLen+1), // name too long
		"D " + strings.Repeat("1", MaxLine),      // over-long line
	}
	for _, in := range bad {
		if _, err := ParseLine([]byte(in)); err == nil {
			t.Errorf("ParseLine(%q): want error, got nil", in)
		}
	}
}

func TestParseLineIgnoresCommentsAndBlanks(t *testing.T) {
	for _, in := range []string{"", "# a comment", "#", "\r"} {
		f, err := ParseLine([]byte(in))
		if err != nil || f.Kind != FrameNone {
			t.Errorf("ParseLine(%q) = %+v, %v; want FrameNone", in, f, err)
		}
	}
	// Telnet-style CRLF is tolerated on real frames.
	f, err := ParseLine([]byte("H 99\r"))
	if err != nil || f.Kind != FrameHeartbeat || f.Item.Watermark != 99 {
		t.Fatalf("CRLF heartbeat: %+v, %v", f, err)
	}
}

func TestValidName(t *testing.T) {
	good := []string{"a", "sensor_1", "west.coast-2", strings.Repeat("x", MaxNameLen)}
	for _, n := range good {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	bad := []string{"", "has space", "semi;colon", "slash/", "tab\tname", "ünïcode", strings.Repeat("x", MaxNameLen+1)}
	for _, n := range bad {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}
}

func TestBatchMarkRoundTrip(t *testing.T) {
	p := stream.BatchProv{BatchID: 18446744073709551615, SendMS: 1754640000123}
	line := AppendBatchMark(nil, p)
	f, err := ParseLine(bytes.TrimSuffix(line, []byte("\n")))
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != FrameBatchMark || f.Prov != p {
		t.Fatalf("batch mark mismatch: %+v", f)
	}
	for _, bad := range []string{
		"B 1",     // too few fields
		"B 1 2 3", // too many fields
		"B x 2",   // bad id
		"B 0 2",   // zero id reserved for "no provenance"
		"B 1 y",   // bad send time
		"B -1 2",  // negative id
	} {
		if _, err := ParseLine([]byte(bad)); err == nil {
			t.Fatalf("ParseLine(%q) accepted malformed batch mark", bad)
		}
	}
}
