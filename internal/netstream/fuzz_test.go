package netstream

import (
	"bytes"
	"testing"
)

// FuzzLineProtocol asserts the frame decoder's two load-bearing
// properties: it never panics on arbitrary input, and every line it
// accepts survives a re-encode/re-parse round trip unchanged — so the
// wire format cannot silently lose or alter a frame the decoder let
// through.
func FuzzLineProtocol(f *testing.F) {
	f.Add([]byte("S sensors acme"))
	f.Add([]byte("S s1"))
	f.Add([]byte("D 10 25 0 3 1 42.5"))
	f.Add([]byte("D -5 3 18446744073709551615 7 255 -1e300"))
	f.Add([]byte("H 123456"))
	f.Add([]byte("# comment"))
	f.Add([]byte(""))
	f.Add([]byte("D 1 2 3 4 5 NaN"))
	f.Add([]byte("X what"))
	f.Fuzz(func(t *testing.T, line []byte) {
		fr, err := ParseLine(line) // must not panic
		if err != nil {
			return
		}
		var enc []byte
		switch fr.Kind {
		case FrameNone:
			return // comments/blanks have no canonical encoding
		case FrameHello:
			enc = AppendHello(nil, fr.Source, fr.Tenant)
		default:
			enc = AppendItem(nil, fr.Item)
		}
		if len(enc) == 0 || enc[len(enc)-1] != '\n' {
			t.Fatalf("encoder emitted unterminated frame %q", enc)
		}
		fr2, err := ParseLine(bytes.TrimSuffix(enc, []byte("\n")))
		if err != nil {
			t.Fatalf("re-parse of encoded frame %q failed: %v", enc, err)
		}
		// NaN payloads compare unequal by definition; compare their wire
		// form instead (the encoder is deterministic).
		if fr.Kind == FrameData && fr.Item.Tuple.Value != fr.Item.Tuple.Value {
			fr2.Item.Tuple.Value, fr.Item.Tuple.Value = 0, 0
		}
		if fr2 != fr {
			t.Fatalf("round trip changed frame: %+v -> %q -> %+v", fr, enc, fr2)
		}
	})
}
