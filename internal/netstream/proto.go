// Package netstream is the wire layer of the network control plane: a
// newline-framed line protocol that carries stream items over TCP, a
// decoder that turns a connection back into stream.Items, a listener
// that feeds decoded items into a per-source sink (the fleet registry's
// broadcast rings), and a reconnecting client built on the resilience
// retry policy.
//
// The protocol is text, one frame per line, fields space-separated:
//
//	S <source> [tenant]                      hello: names the stream this
//	                                         connection feeds; must be the
//	                                         first frame
//	D <ts> <arrival> <seq> <key> <src> <value>   one data tuple
//	H <watermark>                            heartbeat / watermark
//	B <batchid> <sendms>                     optional batch provenance:
//	                                         client batch id + wall-clock
//	                                         send time (Unix ms) for every
//	                                         following item until the next
//	                                         B frame
//	# ...                                    comment, ignored
//
// Blank lines are ignored. ts/arrival/watermark are stream-time ms
// (int64), seq and key are uint64, src is uint8, value is a float64
// formatted with %g at full precision so decoding round-trips the bits.
// The B frame is a v2 extension: v1 producers simply never send it and
// v1 consumers never see it (the decoder swallows it), so the two
// protocol generations interoperate both ways. batchid is a uint64 ≥ 1;
// a replayed batch (reconnect resend) reuses its original id, which is
// how replay spans become visible server-side. docs/API.md has the full
// grammar and a walkthrough.
package netstream

import (
	"fmt"
	"strconv"

	"repro/internal/stream"
)

// FrameKind discriminates decoded frames.
type FrameKind int

const (
	// FrameNone is a blank or comment line.
	FrameNone FrameKind = iota
	// FrameHello is the connection preamble naming source (and tenant).
	FrameHello
	// FrameData carries one data tuple in Item.
	FrameData
	// FrameHeartbeat carries a watermark in Item.
	FrameHeartbeat
	// FrameBatchMark carries wire provenance in Prov: it applies to
	// every following item frame until the next mark.
	FrameBatchMark
)

// Frame is one decoded protocol line.
type Frame struct {
	Kind   FrameKind
	Item   stream.Item      // FrameData / FrameHeartbeat
	Source string           // FrameHello
	Tenant string           // FrameHello, optional
	Prov   stream.BatchProv // FrameBatchMark
}

// MaxLine bounds one protocol line; longer lines are a protocol error
// (they cannot be produced by the encoder).
const MaxLine = 4096

// MaxNameLen bounds source and tenant names on the wire.
const MaxNameLen = 64

// ValidName reports whether s is usable as a source or tenant name:
// non-empty, at most MaxNameLen bytes, ASCII letters, digits, '_', '-',
// '.' only. The alphabet keeps names safe as metric label values, path
// components (durable dirs) and URL segments.
func ValidName(s string) bool {
	if len(s) == 0 || len(s) > MaxNameLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '_' || c == '-' || c == '.':
		default:
			return false
		}
	}
	return true
}

// AppendHello appends a hello frame (newline included). tenant may be
// empty.
func AppendHello(dst []byte, source, tenant string) []byte {
	dst = append(dst, 'S', ' ')
	dst = append(dst, source...)
	if tenant != "" {
		dst = append(dst, ' ')
		dst = append(dst, tenant...)
	}
	return append(dst, '\n')
}

// AppendItem appends one item frame (newline included).
func AppendItem(dst []byte, it stream.Item) []byte {
	if it.Heartbeat {
		dst = append(dst, 'H', ' ')
		dst = strconv.AppendInt(dst, int64(it.Watermark), 10)
		return append(dst, '\n')
	}
	t := it.Tuple
	dst = append(dst, 'D', ' ')
	dst = strconv.AppendInt(dst, int64(t.TS), 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(t.Arrival), 10)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, t.Seq, 10)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, t.Key, 10)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, uint64(t.Src), 10)
	dst = append(dst, ' ')
	dst = strconv.AppendFloat(dst, t.Value, 'g', -1, 64)
	return append(dst, '\n')
}

// AppendBatchMark appends a batch-provenance frame (newline included).
func AppendBatchMark(dst []byte, p stream.BatchProv) []byte {
	dst = append(dst, 'B', ' ')
	dst = strconv.AppendUint(dst, p.BatchID, 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, p.SendMS, 10)
	return append(dst, '\n')
}

// fields splits line on single spaces into at most max fields, without
// allocating a slice header per call site surprise: it reuses the given
// scratch. Empty fields (double spaces) are a protocol error, signalled
// by returning ok=false.
func fields(line []byte, scratch [][]byte) ([][]byte, bool) {
	out := scratch[:0]
	start := 0
	for i := 0; i <= len(line); i++ {
		if i == len(line) || line[i] == ' ' {
			if i == start {
				return nil, false // empty field: leading/trailing/double space
			}
			out = append(out, line[start:i])
			start = i + 1
		}
	}
	return out, true
}

// ParseLine decodes one protocol line (without its trailing newline; a
// trailing '\r' is tolerated for telnet-style clients). It never panics,
// whatever the input.
func ParseLine(line []byte) (Frame, error) {
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	if len(line) > MaxLine {
		return Frame{}, fmt.Errorf("netstream: line exceeds %d bytes", MaxLine)
	}
	if len(line) == 0 || line[0] == '#' {
		return Frame{Kind: FrameNone}, nil
	}
	var scratch [8][]byte
	fs, ok := fields(line, scratch[:])
	if !ok {
		return Frame{}, fmt.Errorf("netstream: malformed frame %q: empty field", line)
	}
	switch string(fs[0]) {
	case "S":
		if len(fs) != 2 && len(fs) != 3 {
			return Frame{}, fmt.Errorf("netstream: hello wants 'S <source> [tenant]', got %d fields", len(fs))
		}
		f := Frame{Kind: FrameHello, Source: string(fs[1])}
		if !ValidName(f.Source) {
			return Frame{}, fmt.Errorf("netstream: bad source name %q", f.Source)
		}
		if len(fs) == 3 {
			f.Tenant = string(fs[2])
			if !ValidName(f.Tenant) {
				return Frame{}, fmt.Errorf("netstream: bad tenant name %q", f.Tenant)
			}
		}
		return f, nil
	case "H":
		if len(fs) != 2 {
			return Frame{}, fmt.Errorf("netstream: heartbeat wants 'H <watermark>', got %d fields", len(fs))
		}
		w, err := strconv.ParseInt(string(fs[1]), 10, 64)
		if err != nil {
			return Frame{}, fmt.Errorf("netstream: bad watermark %q", fs[1])
		}
		return Frame{Kind: FrameHeartbeat, Item: stream.HeartbeatItem(stream.Time(w))}, nil
	case "B":
		if len(fs) != 3 {
			return Frame{}, fmt.Errorf("netstream: batch mark wants 'B <batchid> <sendms>', got %d fields", len(fs))
		}
		id, err := strconv.ParseUint(string(fs[1]), 10, 64)
		if err != nil {
			return Frame{}, fmt.Errorf("netstream: bad batch id %q", fs[1])
		}
		if id == 0 {
			return Frame{}, fmt.Errorf("netstream: batch id must be >= 1")
		}
		send, err := strconv.ParseInt(string(fs[2]), 10, 64)
		if err != nil {
			return Frame{}, fmt.Errorf("netstream: bad send time %q", fs[2])
		}
		return Frame{Kind: FrameBatchMark, Prov: stream.BatchProv{BatchID: id, SendMS: send}}, nil
	case "D":
		if len(fs) != 7 {
			return Frame{}, fmt.Errorf("netstream: data wants 'D <ts> <arrival> <seq> <key> <src> <value>', got %d fields", len(fs))
		}
		ts, err := strconv.ParseInt(string(fs[1]), 10, 64)
		if err != nil {
			return Frame{}, fmt.Errorf("netstream: bad ts %q", fs[1])
		}
		ar, err := strconv.ParseInt(string(fs[2]), 10, 64)
		if err != nil {
			return Frame{}, fmt.Errorf("netstream: bad arrival %q", fs[2])
		}
		seq, err := strconv.ParseUint(string(fs[3]), 10, 64)
		if err != nil {
			return Frame{}, fmt.Errorf("netstream: bad seq %q", fs[3])
		}
		key, err := strconv.ParseUint(string(fs[4]), 10, 64)
		if err != nil {
			return Frame{}, fmt.Errorf("netstream: bad key %q", fs[4])
		}
		src, err := strconv.ParseUint(string(fs[5]), 10, 8)
		if err != nil {
			return Frame{}, fmt.Errorf("netstream: bad src %q", fs[5])
		}
		val, err := strconv.ParseFloat(string(fs[6]), 64)
		if err != nil {
			return Frame{}, fmt.Errorf("netstream: bad value %q", fs[6])
		}
		return Frame{Kind: FrameData, Item: stream.DataItem(stream.Tuple{
			TS: stream.Time(ts), Arrival: stream.Time(ar), Seq: seq,
			Key: key, Src: uint8(src), Value: val,
		})}, nil
	default:
		return Frame{}, fmt.Errorf("netstream: unknown frame type %q", fs[0])
	}
}
