package netstream

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"repro/internal/stream"
)

// Decoder turns a byte stream of protocol lines back into stream items.
// It is strict: a malformed line is an error, not a skip — silently
// dropping frames would corrupt the byte-equivalence contract the DST
// wire-replay dimension (and the integration oracle) enforce.
type Decoder struct {
	r      *bufio.Reader
	source string
	tenant string
	hello  bool
	frames int64
	prov   stream.BatchProv // current batch mark; zero until one arrives
}

// NewDecoder wraps r. The internal buffer is sized for MaxLine, so
// over-long lines surface as protocol errors instead of silent splits.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReaderSize(r, MaxLine+2)}
}

// Source returns the stream name announced by the hello frame ("" before
// Hello succeeded).
func (d *Decoder) Source() string { return d.source }

// Tenant returns the tenant announced by the hello frame (may be "").
func (d *Decoder) Tenant() string { return d.tenant }

// Frames returns how many non-empty frames were decoded.
func (d *Decoder) Frames() int64 { return d.frames }

// Prov returns the wire provenance currently in effect: the most recent
// batch mark, or the zero BatchProv (Valid() == false) when the
// producer is a v1 client that never sends marks.
func (d *Decoder) Prov() stream.BatchProv { return d.prov }

// readLine returns the next line without its newline. io.EOF means a
// clean end (no partial line pending).
func (d *Decoder) readLine() ([]byte, error) {
	line, err := d.r.ReadSlice('\n')
	if errors.Is(err, bufio.ErrBufferFull) {
		return nil, fmt.Errorf("netstream: line exceeds %d bytes", MaxLine)
	}
	if err != nil {
		if errors.Is(err, io.EOF) && len(line) > 0 {
			// Final line without a trailing newline: still a frame.
			return line, nil
		}
		return nil, err
	}
	return line[:len(line)-1], nil
}

// Hello consumes frames until the connection preamble arrives and records
// the announced source and tenant. A data or heartbeat frame before the
// hello is a protocol error.
func (d *Decoder) Hello() error {
	if d.hello {
		return nil
	}
	for {
		line, err := d.readLine()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return fmt.Errorf("netstream: connection ended before hello")
			}
			return err
		}
		f, err := ParseLine(line)
		if err != nil {
			return err
		}
		switch f.Kind {
		case FrameNone:
			continue
		case FrameHello:
			d.source, d.tenant, d.hello = f.Source, f.Tenant, true
			d.frames++
			return nil
		default:
			return fmt.Errorf("netstream: frame before hello")
		}
	}
}

// Next returns the next decoded item. ok=false means the stream ended
// cleanly. A repeated hello frame mid-stream is a protocol error.
func (d *Decoder) Next() (stream.Item, bool, error) {
	if !d.hello {
		if err := d.Hello(); err != nil {
			return stream.Item{}, false, err
		}
	}
	for {
		line, err := d.readLine()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return stream.Item{}, false, nil
			}
			return stream.Item{}, false, err
		}
		f, err := ParseLine(line)
		if err != nil {
			return stream.Item{}, false, err
		}
		switch f.Kind {
		case FrameNone:
			continue
		case FrameHello:
			return stream.Item{}, false, fmt.Errorf("netstream: duplicate hello mid-stream")
		case FrameBatchMark:
			d.prov = f.Prov
			d.frames++
			continue
		default:
			d.frames++
			return f.Item, true, nil
		}
	}
}

// Buffered reports whether more input is already sitting in the read
// buffer — the listener uses it to batch everything that arrived in one
// TCP segment into one publish without stalling on a partial batch.
func (d *Decoder) Buffered() bool { return d.r.Buffered() > 0 }

// ReadAll drains the decoder into a slice: hello, then every item until
// clean EOF. It is the DST wire-replay entry point.
func (d *Decoder) ReadAll() ([]stream.Item, error) {
	if err := d.Hello(); err != nil {
		return nil, err
	}
	var items []stream.Item
	for {
		it, ok, err := d.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return items, nil
		}
		items = append(items, it)
	}
}
