package netstream

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/stream"
)

// memSink collects published items per source.
type memSink struct {
	mu     sync.Mutex
	items  map[string][]stream.Item
	provs  map[string][]stream.BatchProv // one entry per Publish call
	tenant map[string]string
	err    error // returned from Publish when set
}

func newMemSink() *memSink {
	return &memSink{
		items:  make(map[string][]stream.Item),
		provs:  make(map[string][]stream.BatchProv),
		tenant: make(map[string]string),
	}
}

func (s *memSink) Publish(source, tenant string, items []stream.Item, prov stream.BatchProv) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.items[source] = append(s.items[source], items...) // copies: append clones into our backing array
	s.provs[source] = append(s.provs[source], prov)
	s.tenant[source] = tenant
	return nil
}

func (s *memSink) count(source string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items[source])
}

func (s *memSink) get(source string) []stream.Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]stream.Item, len(s.items[source]))
	copy(out, s.items[source])
	return out
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(discard{}, nil))
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func testItems(n int) []stream.Item {
	items := make([]stream.Item, n)
	for i := range items {
		items[i] = stream.DataItem(stream.Tuple{
			TS: stream.Time(i * 10), Arrival: stream.Time(i*10 + 5), Seq: uint64(i), Value: float64(i),
		})
	}
	return items
}

func TestListenerDeliversInOrder(t *testing.T) {
	sink := newMemSink()
	l, err := Listen("127.0.0.1:0", sink, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	items := testItems(500)
	c := &Client{Addr: l.Addr().String(), Source: "s1", Tenant: "acme"}
	defer c.Close()
	for i := 0; i < len(items); i += 50 {
		if err := c.Send(context.Background(), items[i:i+50]); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all items", func() bool { return sink.count("s1") == len(items) })
	got := sink.get("s1")
	for i := range items {
		if got[i] != items[i] {
			t.Fatalf("item %d: got %+v want %+v", i, got[i], items[i])
		}
	}
	sink.mu.Lock()
	tenant := sink.tenant["s1"]
	sink.mu.Unlock()
	if tenant != "acme" {
		t.Fatalf("tenant = %q, want acme", tenant)
	}
	if l.Accepted() != 1 || l.Rejected() != 0 {
		t.Fatalf("accepted=%d rejected=%d", l.Accepted(), l.Rejected())
	}
}

func TestListenerRejectsProtocolGarbage(t *testing.T) {
	sink := newMemSink()
	l, err := Listen("127.0.0.1:0", sink, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("S s1\nD not a valid frame\n")); err != nil {
		t.Fatal(err)
	}
	// The listener closes the connection on the malformed frame; a read
	// observes EOF.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected the listener to close the connection")
	}
	waitFor(t, "rejection", func() bool { return l.Rejected() == 1 })
}

func TestListenerSinkErrorClosesConnection(t *testing.T) {
	sink := newMemSink()
	sink.err = errors.New("quota exceeded")
	l, err := Listen("127.0.0.1:0", sink, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("S s1\nH 1\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected the listener to close the connection on sink error")
	}
}

func TestClientReconnectsAcrossListenerRestart(t *testing.T) {
	sink := newMemSink()
	l, err := Listen("127.0.0.1:0", sink, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()

	items := testItems(200)
	c := &Client{Addr: addr, Source: "s1",
		Retry: resilience.Retry{MaxAttempts: 20, BaseDelay: 5 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Seed: 1}}
	defer c.Close()
	if err := c.Send(context.Background(), items[:100]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first half", func() bool { return sink.count("s1") == 100 })

	// Restart the listener on the same address; the client's connection is
	// dead, so the next Send must redial and replay the hello.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Listen(addr, sink, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()

	// The first write on the dead connection can succeed locally before
	// the kernel notices the peer is gone, silently losing that batch —
	// so drive the producer the way a real at-least-once client would:
	// resend until the server has everything, and dedupe on Seq below.
	unique := func() int {
		seen := make(map[uint64]bool)
		for _, it := range sink.get("s1") {
			seen[it.Tuple.Seq] = true
		}
		return len(seen)
	}
	deadline := time.Now().Add(10 * time.Second)
	for unique() < 200 {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %d unique items delivered", unique())
		}
		for i := 100; i < 200; i += 50 {
			// Errors are tolerated: the retry policy redials and a later
			// pass resends whatever was lost.
			_ = c.Send(context.Background(), items[i:i+50])
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Every item made it across the restart (order across reconnect
	// epochs is the consumer's concern — the disorder handlers' job;
	// TestListenerDeliversInOrder pins per-connection ordering).
	if n := unique(); n != 200 {
		t.Fatalf("got %d unique items, want 200", n)
	}
	if c.ItemsSent() < 200 {
		t.Fatalf("ItemsSent = %d, want >= 200", c.ItemsSent())
	}
}

func TestListenerCloseIsIdempotent(t *testing.T) {
	l, err := Listen("127.0.0.1:0", newMemSink(), quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestClientRetryBudgetExhausts(t *testing.T) {
	c := &Client{Addr: "127.0.0.1:1", Source: "s1",
		Retry: resilience.Retry{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Seed: 1},
		Dial:  func() (net.Conn, error) { return nil, fmt.Errorf("refused") }}
	if err := c.Send(context.Background(), testItems(1)); err == nil {
		t.Fatal("want error when every dial fails")
	}
	if c.Redials() == 0 {
		t.Fatal("expected redial attempts to be counted")
	}
}

func TestListenerCarriesWireProvenance(t *testing.T) {
	sink := newMemSink()
	l, err := Listen("127.0.0.1:0", sink, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	now := int64(1754640000000)
	c := &Client{Addr: l.Addr().String(), Source: "s1", Provenance: true,
		NowMS: func() int64 { return now }}
	defer c.Close()
	items := testItems(20)
	if err := c.Send(context.Background(), items[:10]); err != nil {
		t.Fatal(err)
	}
	now += 500
	if err := c.Send(context.Background(), items[10:]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "all items", func() bool { return sink.count("s1") == 20 })

	sink.mu.Lock()
	provs := append([]stream.BatchProv(nil), sink.provs["s1"]...)
	sink.mu.Unlock()
	// The listener may split a send into several publishes, but every
	// publish must carry a valid mark and the ids must step 1 → 2 at the
	// timestamp boundary.
	if len(provs) == 0 {
		t.Fatal("no publishes recorded")
	}
	seen := map[uint64]int64{}
	for i, p := range provs {
		if !p.Valid() {
			t.Fatalf("publish %d carried no provenance: %+v", i, p)
		}
		if prev, ok := seen[p.BatchID]; ok && prev != p.SendMS {
			t.Fatalf("batch id %d seen with two send times", p.BatchID)
		}
		seen[p.BatchID] = p.SendMS
	}
	if len(seen) != 2 || seen[1] != 1754640000000 || seen[2] != 1754640000500 {
		t.Fatalf("batch marks wrong: %v", seen)
	}
}

func TestListenerV1ClientHasZeroProvenance(t *testing.T) {
	sink := newMemSink()
	l, err := Listen("127.0.0.1:0", sink, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c := &Client{Addr: l.Addr().String(), Source: "s1"} // Provenance off
	defer c.Close()
	if err := c.Send(context.Background(), testItems(5)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "items", func() bool { return sink.count("s1") == 5 })
	sink.mu.Lock()
	defer sink.mu.Unlock()
	for _, p := range sink.provs["s1"] {
		if p.Valid() {
			t.Fatalf("v1 client produced provenance: %+v", p)
		}
	}
}
