package netstream

import (
	"strings"
	"testing"

	"repro/internal/stream"
)

func TestDecoderReadAll(t *testing.T) {
	items := []stream.Item{
		stream.DataItem(stream.Tuple{TS: 1, Arrival: 2, Seq: 0, Value: 10}),
		stream.HeartbeatItem(5),
		stream.DataItem(stream.Tuple{TS: 3, Arrival: 4, Seq: 1, Key: 2, Value: -1.5}),
	}
	buf := AppendHello(nil, "s1", "t1")
	buf = append(buf, "# interleaved comment\n\n"...)
	for _, it := range items {
		buf = AppendItem(buf, it)
	}
	d := NewDecoder(strings.NewReader(string(buf)))
	got, err := d.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if d.Source() != "s1" || d.Tenant() != "t1" {
		t.Fatalf("hello: source=%q tenant=%q", d.Source(), d.Tenant())
	}
	if len(got) != len(items) {
		t.Fatalf("got %d items, want %d", len(got), len(items))
	}
	for i := range items {
		if got[i] != items[i] {
			t.Fatalf("item %d: got %+v want %+v", i, got[i], items[i])
		}
	}
	if d.Frames() != int64(len(items))+1 {
		t.Fatalf("frames = %d, want %d", d.Frames(), len(items)+1)
	}
}

func TestDecoderRequiresHelloFirst(t *testing.T) {
	d := NewDecoder(strings.NewReader("D 1 2 3 4 5 6\n"))
	if _, _, err := d.Next(); err == nil {
		t.Fatal("want error for data frame before hello")
	}
}

func TestDecoderRejectsDuplicateHello(t *testing.T) {
	d := NewDecoder(strings.NewReader("S a\nS b\n"))
	if _, _, err := d.Next(); err == nil {
		t.Fatal("want error for duplicate hello")
	}
}

func TestDecoderCleanEOFBeforeHello(t *testing.T) {
	d := NewDecoder(strings.NewReader("# only comments\n"))
	if err := d.Hello(); err == nil {
		t.Fatal("want error for EOF before hello")
	}
}

func TestDecoderFinalLineWithoutNewline(t *testing.T) {
	d := NewDecoder(strings.NewReader("S a\nH 7"))
	got, err := d.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Watermark != 7 {
		t.Fatalf("got %+v", got)
	}
}

func TestDecoderOverlongLine(t *testing.T) {
	d := NewDecoder(strings.NewReader("S a\nD " + strings.Repeat("9", 2*MaxLine) + "\n"))
	if _, err := d.ReadAll(); err == nil {
		t.Fatal("want error for over-long line")
	}
}
