package netstream

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stream"
)

func TestDecoderReadAll(t *testing.T) {
	items := []stream.Item{
		stream.DataItem(stream.Tuple{TS: 1, Arrival: 2, Seq: 0, Value: 10}),
		stream.HeartbeatItem(5),
		stream.DataItem(stream.Tuple{TS: 3, Arrival: 4, Seq: 1, Key: 2, Value: -1.5}),
	}
	buf := AppendHello(nil, "s1", "t1")
	buf = append(buf, "# interleaved comment\n\n"...)
	for _, it := range items {
		buf = AppendItem(buf, it)
	}
	d := NewDecoder(strings.NewReader(string(buf)))
	got, err := d.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if d.Source() != "s1" || d.Tenant() != "t1" {
		t.Fatalf("hello: source=%q tenant=%q", d.Source(), d.Tenant())
	}
	if len(got) != len(items) {
		t.Fatalf("got %d items, want %d", len(got), len(items))
	}
	for i := range items {
		if got[i] != items[i] {
			t.Fatalf("item %d: got %+v want %+v", i, got[i], items[i])
		}
	}
	if d.Frames() != int64(len(items))+1 {
		t.Fatalf("frames = %d, want %d", d.Frames(), len(items)+1)
	}
}

func TestDecoderRequiresHelloFirst(t *testing.T) {
	d := NewDecoder(strings.NewReader("D 1 2 3 4 5 6\n"))
	if _, _, err := d.Next(); err == nil {
		t.Fatal("want error for data frame before hello")
	}
}

func TestDecoderRejectsDuplicateHello(t *testing.T) {
	d := NewDecoder(strings.NewReader("S a\nS b\n"))
	if _, _, err := d.Next(); err == nil {
		t.Fatal("want error for duplicate hello")
	}
}

func TestDecoderCleanEOFBeforeHello(t *testing.T) {
	d := NewDecoder(strings.NewReader("# only comments\n"))
	if err := d.Hello(); err == nil {
		t.Fatal("want error for EOF before hello")
	}
}

func TestDecoderFinalLineWithoutNewline(t *testing.T) {
	d := NewDecoder(strings.NewReader("S a\nH 7"))
	got, err := d.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Watermark != 7 {
		t.Fatalf("got %+v", got)
	}
}

func TestDecoderOverlongLine(t *testing.T) {
	d := NewDecoder(strings.NewReader("S a\nD " + strings.Repeat("9", 2*MaxLine) + "\n"))
	if _, err := d.ReadAll(); err == nil {
		t.Fatal("want error for over-long line")
	}
}

func TestDecoderTracksBatchMarks(t *testing.T) {
	var buf []byte
	buf = AppendHello(buf, "s1", "")
	buf = AppendItem(buf, stream.HeartbeatItem(1)) // before any mark: zero prov
	buf = AppendBatchMark(buf, stream.BatchProv{BatchID: 1, SendMS: 100})
	buf = AppendItem(buf, stream.DataItem(stream.Tuple{TS: 1, Arrival: 1, Seq: 1, Value: 1}))
	buf = AppendItem(buf, stream.DataItem(stream.Tuple{TS: 2, Arrival: 2, Seq: 2, Value: 2}))
	buf = AppendBatchMark(buf, stream.BatchProv{BatchID: 2, SendMS: 250})
	buf = AppendItem(buf, stream.DataItem(stream.Tuple{TS: 3, Arrival: 3, Seq: 3, Value: 3}))

	d := NewDecoder(bytes.NewReader(buf))
	var provs []stream.BatchProv
	for {
		_, ok, err := d.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		provs = append(provs, d.Prov())
	}
	want := []stream.BatchProv{
		{},
		{BatchID: 1, SendMS: 100},
		{BatchID: 1, SendMS: 100},
		{BatchID: 2, SendMS: 250},
	}
	if len(provs) != len(want) {
		t.Fatalf("got %d items, want %d", len(provs), len(want))
	}
	for i := range want {
		if provs[i] != want[i] {
			t.Fatalf("item %d prov = %+v, want %+v", i, provs[i], want[i])
		}
	}
	if !provs[1].Valid() || provs[0].Valid() {
		t.Fatal("Valid() wrong on zero/non-zero prov")
	}
}

func TestDecoderRejectsBatchMarkBeforeHello(t *testing.T) {
	buf := AppendBatchMark(nil, stream.BatchProv{BatchID: 1, SendMS: 5})
	d := NewDecoder(bytes.NewReader(buf))
	if err := d.Hello(); err == nil {
		t.Fatal("batch mark before hello should be a protocol error")
	}
}
