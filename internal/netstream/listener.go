package netstream

import (
	"errors"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/stream"
)

// Sink receives decoded item batches, routed by the source name the
// connection announced. The fleet registry implements it: each named
// source owns a broadcast ring and a tenant rate quota.
type Sink interface {
	// Publish delivers one in-order batch from a connection feeding the
	// named source. The slice is reused after Publish returns, so
	// implementations must copy what they keep. prov carries the wire
	// provenance in effect for every item of the batch (the zero value
	// for v1 producers); the listener never mixes items under different
	// marks in one Publish. A returned error terminates the connection
	// (the client's retry policy decides whether to reconnect).
	Publish(source, tenant string, items []stream.Item, prov stream.BatchProv) error
}

// connBatch bounds how many decoded items one Publish carries.
const connBatch = 256

// Listener accepts TCP line-protocol connections and feeds decoded items
// into the sink. Each connection announces its source with a hello frame;
// many connections may feed the same source (sequentially — e.g. a
// reconnecting client — or concurrently; the sink serializes). A decode
// error closes the offending connection and touches nothing else.
type Listener struct {
	l    net.Listener
	sink Sink
	log  *slog.Logger

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg       sync.WaitGroup
	accepted atomic.Int64
	rejected atomic.Int64 // connections dropped on protocol/sink errors
}

// Listen binds addr (e.g. ":9070", "127.0.0.1:0") and starts accepting.
// A nil logger defaults to slog.Default.
func Listen(addr string, sink Sink, log *slog.Logger) (*Listener, error) {
	if log == nil {
		log = slog.Default()
	}
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	l := &Listener{l: nl, sink: sink, log: log, conns: make(map[net.Conn]struct{})}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the bound address (useful with ":0").
func (l *Listener) Addr() net.Addr { return l.l.Addr() }

// Accepted returns how many connections were accepted.
func (l *Listener) Accepted() int64 { return l.accepted.Load() }

// Rejected returns how many connections ended on a protocol or sink
// error (clean client disconnects are not counted).
func (l *Listener) Rejected() int64 { return l.rejected.Load() }

// Close stops accepting, closes every live connection and waits for the
// connection handlers to drain. Idempotent.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		l.wg.Wait()
		return nil
	}
	l.closed = true
	for c := range l.conns {
		c.Close()
	}
	l.mu.Unlock()
	err := l.l.Close()
	l.wg.Wait()
	return err
}

// track registers a live connection; returns false when the listener is
// already closing (the caller must drop the conn).
func (l *Listener) track(c net.Conn) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false
	}
	l.conns[c] = struct{}{}
	return true
}

func (l *Listener) untrack(c net.Conn) {
	l.mu.Lock()
	delete(l.conns, c)
	l.mu.Unlock()
}

func (l *Listener) acceptLoop() {
	defer l.wg.Done()
	for {
		c, err := l.l.Accept()
		if err != nil {
			return // listener closed
		}
		if !l.track(c) {
			c.Close()
			return
		}
		l.accepted.Add(1)
		l.wg.Add(1)
		go l.serve(c)
	}
}

// serve drains one connection: hello, then decoded items batched into
// sink publishes. Batches flush when full or when the read buffer runs
// dry, so one TCP segment's worth of frames becomes one publish and a
// trickling client still sees per-frame latency.
func (l *Listener) serve(c net.Conn) {
	defer l.wg.Done()
	defer l.untrack(c)
	defer c.Close()
	d := NewDecoder(c)
	if err := d.Hello(); err != nil {
		l.rejected.Add(1)
		if !errors.Is(err, net.ErrClosed) {
			l.log.Warn("netstream: rejecting connection", "remote", c.RemoteAddr().String(), "err", err)
		}
		return
	}
	source, tenant := d.Source(), d.Tenant()
	batch := make([]stream.Item, 0, connBatch)
	prov := d.Prov()
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		if err := l.sink.Publish(source, tenant, batch, prov); err != nil {
			l.rejected.Add(1)
			l.log.Warn("netstream: sink rejected batch; closing connection",
				"source", source, "remote", c.RemoteAddr().String(), "err", err)
			return false
		}
		batch = batch[:0]
		return true
	}
	for {
		it, ok, err := d.Next()
		if err != nil {
			l.rejected.Add(1)
			if !errors.Is(err, net.ErrClosed) {
				l.log.Warn("netstream: closing connection", "source", source, "remote", c.RemoteAddr().String(), "err", err)
			}
			flush()
			return
		}
		if !ok {
			flush()
			return
		}
		// A new batch mark must not relabel items decoded under the old
		// one: flush the pending batch before adopting it.
		if p := d.Prov(); p != prov {
			if !flush() {
				return
			}
			prov = p
		}
		batch = append(batch, it)
		if len(batch) >= connBatch || !d.Buffered() {
			if !flush() {
				return
			}
		}
	}
}
