package netstream

import (
	"context"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
	"repro/internal/stream"
)

// Client is a reconnecting line-protocol producer: it dials Addr, sends
// the hello frame, and streams item frames. A failed dial or write tears
// the connection down and the next Send re-dials under the resilience
// retry policy (backoff + attempt budget), replays the hello and resends
// the whole batch — the same semantics resilience.RetryingSource gives
// the server-side ingest loops, applied to the producer edge. Item
// frames of a batch are only visible to the server after the batch's
// write fully succeeded on one connection, so a mid-batch reconnect can
// duplicate a prefix only if the kernel flushed it; callers who need
// exactly-once must dedupe on Seq downstream.
//
// A Client is not safe for concurrent use; one producer goroutine owns it.
type Client struct {
	// Addr is the listener's TCP address.
	Addr string
	// Source names the stream every frame feeds (hello frame). Required.
	Source string
	// Tenant optionally names the tenant owning the source.
	Tenant string
	// Retry shapes the redial policy. The zero value uses the resilience
	// defaults (3 attempts, exponential backoff).
	Retry resilience.Retry
	// Dial overrides the dialer (tests); nil uses net.Dial("tcp", Addr).
	Dial func() (net.Conn, error)
	// Provenance stamps each Send with a batch mark (`B <id> <sendms>`)
	// so the server can measure true client-send→emission latency and
	// attribute replay spans. Off by default: v1 servers reject the
	// unknown frame.
	Provenance bool
	// NowMS supplies the batch mark's send timestamp in Unix ms; nil
	// uses time.Now. Tests inject fixed clocks.
	NowMS func() int64

	conn     net.Conn
	buf      []byte
	batchID  uint64
	redials  atomic.Int64
	itemsOut atomic.Int64
}

// Redials reports how many reconnect attempts the client has spent.
func (c *Client) Redials() int64 { return c.redials.Load() }

// ItemsSent reports how many item frames were written on intact
// connections.
func (c *Client) ItemsSent() int64 { return c.itemsOut.Load() }

func (c *Client) dial() (net.Conn, error) {
	if c.Dial != nil {
		return c.Dial()
	}
	return net.Dial("tcp", c.Addr)
}

// connect establishes a connection and sends the hello frame.
func (c *Client) connect() error {
	conn, err := c.dial()
	if err != nil {
		return err
	}
	if _, err := conn.Write(AppendHello(nil, c.Source, c.Tenant)); err != nil {
		conn.Close()
		return err
	}
	c.conn = conn
	return nil
}

// Send writes one batch of items, redialing under the retry policy when
// the connection is down or the write fails. On success every item frame
// reached the kernel on a single connection, preceded by a hello. With
// Provenance on, the batch is prefixed by a mark carrying a fresh batch
// id and the send time; the buffer is built once, so a redial resends
// the identical mark — the duplicated id is the server's replay signal.
func (c *Client) Send(ctx context.Context, items []stream.Item) error {
	c.buf = c.buf[:0]
	if c.Provenance {
		c.batchID++
		now := c.NowMS
		if now == nil {
			now = func() int64 { return time.Now().UnixMilli() }
		}
		c.buf = AppendBatchMark(c.buf, stream.BatchProv{BatchID: c.batchID, SendMS: now()})
	}
	for _, it := range items {
		c.buf = AppendItem(c.buf, it)
	}
	first := true
	err := c.Retry.Do(ctx, func() error {
		if !first {
			c.redials.Add(1)
		}
		first = false
		if c.conn == nil {
			if err := c.connect(); err != nil {
				return err
			}
		}
		if _, err := c.conn.Write(c.buf); err != nil {
			c.conn.Close()
			c.conn = nil
			return err
		}
		return nil
	})
	if err == nil {
		c.itemsOut.Add(int64(len(items)))
	}
	return err
}

// Close shuts the connection down (if one is up). The client can be
// reused: the next Send re-dials.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
