package stats

import (
	"fmt"
	"sort"
)

// P2 is the P² (P-square) streaming estimator of a single quantile
// (Jain & Chlamtac 1985). It keeps five markers and adjusts them with a
// piecewise-parabolic formula, giving O(1) memory and update cost. It is
// the cheap estimator used on per-tuple hot paths; GK below provides
// rank-error guarantees when they are needed.
type P2 struct {
	p     float64    // target quantile
	n     int        // observations so far
	q     [5]float64 // marker heights
	pos   [5]int     // marker positions (1-based ranks)
	des   [5]float64 // desired positions
	dpos  [5]float64 // desired position increments
	first [5]float64 // initial buffer until 5 samples arrive
}

// NewP2 returns a P² estimator for quantile p in (0, 1).
func NewP2(p float64) *P2 {
	if p <= 0 || p >= 1 {
		panic("stats: P2 quantile must be in (0, 1)")
	}
	e := &P2{p: p}
	e.dpos = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// Add incorporates x.
func (e *P2) Add(x float64) {
	if e.n < 5 {
		e.first[e.n] = x
		e.n++
		if e.n == 5 {
			s := e.first
			sort.Float64s(s[:])
			e.q = s
			for i := range e.pos {
				e.pos[i] = i + 1
			}
			e.des = [5]float64{1, 1 + 2*e.p, 1 + 4*e.p, 3 + 2*e.p, 5}
		}
		return
	}
	e.n++

	// Find the cell k such that q[k] <= x < q[k+1], extending extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.des {
		e.des[i] += e.dpos[i]
	}

	// Adjust interior markers.
	for i := 1; i <= 3; i++ {
		d := e.des[i] - float64(e.pos[i])
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sign := 1
			if d < 0 {
				sign = -1
			}
			qn := e.parabolic(i, sign)
			if e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, sign)
			}
			e.pos[i] += sign
		}
	}
}

func (e *P2) parabolic(i, d int) float64 {
	df := float64(d)
	num1 := float64(e.pos[i]-e.pos[i-1]) + df
	num2 := float64(e.pos[i+1]-e.pos[i]) - df
	den := float64(e.pos[i+1] - e.pos[i-1])
	t1 := (e.q[i+1] - e.q[i]) / float64(e.pos[i+1]-e.pos[i])
	t2 := (e.q[i] - e.q[i-1]) / float64(e.pos[i]-e.pos[i-1])
	return e.q[i] + df/den*(num1*t1+num2*t2)
}

func (e *P2) linear(i, d int) float64 {
	return e.q[i] + float64(d)*(e.q[i+d]-e.q[i])/float64(e.pos[i+d]-e.pos[i])
}

// Value returns the current quantile estimate. Before five observations it
// falls back to the exact quantile of the buffered samples.
func (e *P2) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		s := make([]float64, e.n)
		copy(s, e.first[:e.n])
		sort.Float64s(s)
		return percentileSorted(s, e.p)
	}
	return e.q[2]
}

// N returns the number of observations.
func (e *P2) N() int { return e.n }

// gkEntry is one tuple of the Greenwald–Khanna summary.
type gkEntry struct {
	v     float64
	g     int64 // rmin(v_i) - rmin(v_{i-1})
	delta int64 // rmax(v_i) - rmin(v_i)
}

// GK is a Greenwald–Khanna ε-approximate quantile summary: Quantile(q)
// returns a value whose rank differs from ceil(q·n) by at most ε·n. Memory
// is O((1/ε)·log(ε·n)). The controller uses it for the lateness-distribution
// sketch, where rank-error guarantees translate directly into guarantees on
// the estimated fraction of late tuples.
type GK struct {
	eps     float64
	n       int64
	entries []gkEntry
	pending []float64 // small insert buffer to amortize compress cost
	cumG    []int64   // prefix sums of entry g values; rebuilt lazily
	dirty   bool      // cumG out of date
}

// NewGK returns a summary with rank error at most eps in (0, 1).
func NewGK(eps float64) *GK {
	if eps <= 0 || eps >= 1 {
		panic("stats: GK epsilon must be in (0, 1)")
	}
	return &GK{eps: eps}
}

// Add incorporates x.
func (g *GK) Add(x float64) {
	g.pending = append(g.pending, x)
	if len(g.pending) >= g.flushThreshold() {
		g.flush()
	}
}

func (g *GK) flushThreshold() int {
	t := int(1 / (2 * g.eps))
	if t < 16 {
		t = 16
	}
	return t
}

func (g *GK) flush() {
	if len(g.pending) == 0 {
		return
	}
	sort.Float64s(g.pending)
	out := make([]gkEntry, 0, len(g.entries)+len(g.pending))
	i := 0
	for _, x := range g.pending {
		for i < len(g.entries) && g.entries[i].v <= x {
			out = append(out, g.entries[i])
			i++
		}
		var delta int64
		if len(out) == 0 && i >= len(g.entries) {
			delta = 0
		} else if len(out) == 0 || i >= len(g.entries) {
			delta = 0 // new min or max: exact rank
		} else {
			// Interior insertion: floor(2εn)−1, so that g+Δ = floor(2εn)
			// ≤ 2εn keeps the summary invariant the query proof needs.
			delta = int64(2*g.eps*float64(g.n)) - 1
			if delta < 0 {
				delta = 0
			}
		}
		out = append(out, gkEntry{v: x, g: 1, delta: delta})
		g.n++
	}
	out = append(out, g.entries[i:]...)
	g.entries = out
	g.pending = g.pending[:0]
	g.dirty = true
	g.compress()
}

// compress merges adjacent entries whose combined uncertainty stays within
// the 2εn band.
func (g *GK) compress() {
	if len(g.entries) < 3 {
		return
	}
	g.dirty = true
	band := int64(2 * g.eps * float64(g.n))
	out := g.entries[:0]
	out = append(out, g.entries[0])
	for i := 1; i < len(g.entries); i++ {
		e := g.entries[i]
		last := &out[len(out)-1]
		// Never merge away the final (max) entry, and keep the first.
		if len(out) > 1 && i < len(g.entries)-1 && last.g+e.g+e.delta <= band {
			e.g += last.g
			out[len(out)-1] = e
		} else {
			out = append(out, e)
		}
	}
	g.entries = out
}

// Quantile returns a value whose rank is within eps*n of q*n.
func (g *GK) Quantile(q float64) float64 {
	g.flush()
	if g.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := float64(int64(q*float64(g.n)) + 1)
	if target > float64(g.n) {
		target = float64(g.n)
	}
	// The allowance must stay real-valued: truncating εn to an integer
	// (e.g. 0.95 → 0) can make the rank test unsatisfiable for every
	// entry even though the summary invariant guarantees a witness.
	allow := g.eps * float64(g.n)
	var rmin int64
	for i, e := range g.entries {
		rmin += e.g
		rmax := rmin + e.delta
		if target-float64(rmin) <= allow && float64(rmax)-target <= allow {
			return e.v
		}
		if i == len(g.entries)-1 {
			break
		}
	}
	return g.entries[len(g.entries)-1].v
}

// FracAbove returns an approximation of the fraction of observations
// strictly greater than x, within the summary's rank error. It runs in
// O(log entries) via a cached prefix-rank table, because the adaptive
// controllers probe it dozens of times per adaptation step.
func (g *GK) FracAbove(x float64) float64 {
	g.flush()
	if g.n == 0 {
		return 0
	}
	g.rebuildRanks()
	// Largest index with entries[i].v <= x.
	lo, hi := 0, len(g.entries) // lo = count of entries with v <= x
	for lo < hi {
		mid := (lo + hi) / 2
		if g.entries[mid].v <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	var rank int64
	if lo > 0 {
		rank = g.cumG[lo-1]
	}
	above := g.n - rank
	if above < 0 {
		above = 0
	}
	return float64(above) / float64(g.n)
}

func (g *GK) rebuildRanks() {
	if !g.dirty && len(g.cumG) == len(g.entries) {
		return
	}
	g.cumG = g.cumG[:0]
	var sum int64
	for _, e := range g.entries {
		sum += e.g
		g.cumG = append(g.cumG, sum)
	}
	g.dirty = false
}

// N returns the number of observations.
func (g *GK) N() int64 { return g.n + int64(len(g.pending)) }

// Size returns the number of stored summary entries (after a flush), a
// measure of the sketch's memory footprint.
func (g *GK) Size() int {
	g.flush()
	return len(g.entries)
}

// String describes the summary.
func (g *GK) String() string {
	return fmt.Sprintf("gk[eps=%g n=%d entries=%d]", g.eps, g.N(), len(g.entries))
}
