package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestWelfordBasic(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d, want 8", w.N())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	if !almostEqual(w.Var(), 4, 1e-12) {
		t.Fatalf("Var = %v, want 4", w.Var())
	}
	if !almostEqual(w.Std(), 2, 1e-12) {
		t.Fatalf("Std = %v, want 2", w.Std())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", w.Min(), w.Max())
	}
	if !almostEqual(w.Sum(), 40, 1e-9) {
		t.Fatalf("Sum = %v, want 40", w.Sum())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.N() != 0 || w.Sum() != 0 {
		t.Fatal("zero Welford should report zeros")
	}
	w.Remove(3) // removing from empty must be a no-op
	if w.N() != 0 {
		t.Fatal("Remove on empty changed state")
	}
}

func TestWelfordRemoveInvertsAdd(t *testing.T) {
	rng := NewRNG(31)
	f := func(seed uint32) bool {
		n := 3 + int(seed%50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		// Remove the first half, compare to a fresh tracker of the rest.
		half := n / 2
		for _, x := range xs[:half] {
			w.Remove(x)
		}
		var fresh Welford
		for _, x := range xs[half:] {
			fresh.Add(x)
		}
		return w.N() == fresh.N() &&
			almostEqual(w.Mean(), fresh.Mean(), 1e-6) &&
			almostEqual(w.Var(), fresh.Var(), 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordRemoveToEmpty(t *testing.T) {
	var w Welford
	w.Add(5)
	w.Remove(5)
	if w.N() != 0 || w.Mean() != 0 || w.Var() != 0 {
		t.Fatalf("remove-to-empty left state: n=%d mean=%v var=%v", w.N(), w.Mean(), w.Var())
	}
}

func TestWelfordMerge(t *testing.T) {
	rng := NewRNG(37)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Float64Range(-50, 50)
	}
	var whole, left, right Welford
	for i, x := range xs {
		whole.Add(x)
		if i < 400 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(&right)
	if left.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", left.N(), whole.N())
	}
	if !almostEqual(left.Mean(), whole.Mean(), 1e-9) {
		t.Fatalf("merged Mean = %v, want %v", left.Mean(), whole.Mean())
	}
	if !almostEqual(left.Var(), whole.Var(), 1e-9) {
		t.Fatalf("merged Var = %v, want %v", left.Var(), whole.Var())
	}
	if left.Min() != whole.Min() || left.Max() != whole.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestWelfordMergeEmptyCases(t *testing.T) {
	var a, b Welford
	a.Merge(&b) // empty into empty
	if a.N() != 0 {
		t.Fatal("empty merge changed state")
	}
	b.Add(3)
	a.Merge(&b) // non-empty into empty
	if a.N() != 1 || a.Mean() != 3 {
		t.Fatalf("merge into empty: n=%d mean=%v", a.N(), a.Mean())
	}
	var c Welford
	a.Merge(&c) // empty into non-empty
	if a.N() != 1 {
		t.Fatal("merging empty changed count")
	}
}

func TestWelfordSampleVar(t *testing.T) {
	var w Welford
	w.Add(1)
	if w.SampleVar() != 0 {
		t.Fatal("sample variance of one observation should be 0")
	}
	w.Add(3)
	if !almostEqual(w.SampleVar(), 2, 1e-12) {
		t.Fatalf("SampleVar = %v, want 2", w.SampleVar())
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Fatal("fresh EWMA claims initialized")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("first value should seed: %v", e.Value())
	}
	e.Add(20)
	if !almostEqual(e.Value(), 15, 1e-12) {
		t.Fatalf("EWMA = %v, want 15", e.Value())
	}
	e.Add(20)
	if !almostEqual(e.Value(), 17.5, 1e-12) {
		t.Fatalf("EWMA = %v, want 17.5", e.Value())
	}
	e.Reset()
	if e.Initialized() || e.Value() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestEWMAConvergence(t *testing.T) {
	e := NewEWMA(0.2)
	for i := 0; i < 200; i++ {
		e.Add(42)
	}
	if !almostEqual(e.Value(), 42, 1e-9) {
		t.Fatalf("EWMA did not converge to constant input: %v", e.Value())
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	for _, a := range []float64{0, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewEWMA(%v) did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}
