package stats

import (
	"math"
	"testing"
)

func TestReservoirFillsToCapacity(t *testing.T) {
	r := NewReservoir(10, NewRNG(61))
	for i := 0; i < 5; i++ {
		r.Add(float64(i))
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5 before capacity reached", r.Len())
	}
	for i := 5; i < 100; i++ {
		r.Add(float64(i))
	}
	if r.Len() != 10 {
		t.Fatalf("Len = %d, want capacity 10", r.Len())
	}
	if r.N() != 100 {
		t.Fatalf("N = %d, want 100", r.N())
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each of n items should land in the final sample with probability
	// cap/n. Run many trials and check inclusion counts per item.
	const n, capacity, trials = 20, 5, 20000
	counts := make([]int, n)
	rng := NewRNG(67)
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir(capacity, rng)
		for i := 0; i < n; i++ {
			r.Add(float64(i))
		}
		for _, v := range r.Sample() {
			counts[int(v)]++
		}
	}
	want := float64(trials) * capacity / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.1*want {
			t.Errorf("item %d sampled %d times, want ~%v", i, c, want)
		}
	}
}

func TestReservoirMeanEstimate(t *testing.T) {
	rng := NewRNG(71)
	r := NewReservoir(2000, rng)
	for i := 0; i < 100000; i++ {
		r.Add(rng.Float64Range(0, 10))
	}
	if m := r.Mean(); math.Abs(m-5) > 0.3 {
		t.Fatalf("sample mean %v, want ~5", m)
	}
}

func TestReservoirEmptyMean(t *testing.T) {
	r := NewReservoir(4, NewRNG(1))
	if r.Mean() != 0 {
		t.Fatal("empty reservoir mean should be 0")
	}
}

func TestReservoirReset(t *testing.T) {
	r := NewReservoir(4, NewRNG(2))
	r.Add(1)
	r.Reset()
	if r.Len() != 0 || r.N() != 0 {
		t.Fatal("Reset did not clear")
	}
	r.Add(2)
	if r.Len() != 1 {
		t.Fatal("reservoir unusable after Reset")
	}
}

func TestReservoirPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("capacity 0 did not panic")
			}
		}()
		NewReservoir(0, NewRNG(1))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nil rng did not panic")
			}
		}()
		NewReservoir(1, nil)
	}()
}
