package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// ExampleGK shows the streaming quantile summary on a known distribution.
func ExampleGK() {
	g := stats.NewGK(0.01)
	for i := 1; i <= 10000; i++ {
		g.Add(float64(i))
	}
	fmt.Println("p50 within 1%:", within(g.Quantile(0.5), 5000, 100))
	fmt.Println("p99 within 1%:", within(g.Quantile(0.99), 9900, 100))
	fmt.Println("fraction above 9000 within 2%:", within(g.FracAbove(9000), 0.1, 0.02))
	// Output:
	// p50 within 1%: true
	// p99 within 1%: true
	// fraction above 9000 within 2%: true
}

func within(got, want, tol float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// ExampleWelford shows one-pass moments with exact removal, the primitive
// behind windowed averages.
func ExampleWelford() {
	var w stats.Welford
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(v)
	}
	fmt.Println(w.Mean(), w.Std())
	w.Remove(9)
	w.Remove(2)
	fmt.Printf("%d %.4f\n", w.N(), w.Mean())
	// Output:
	// 5 2
	// 6 4.8333
}
