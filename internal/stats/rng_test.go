package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: same seed diverged: %d vs %d", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	var zeros int
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Fatalf("seed 0 produced %d zero outputs; state may be absorbing", zeros)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(5)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.1*want {
			t.Fatalf("bucket %d count %d deviates >10%% from %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.NormFloat64())
	}
	if m := w.Mean(); math.Abs(m) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", m)
	}
	if s := w.Std(); math.Abs(s-1) > 0.02 {
		t.Fatalf("normal std = %v, want ~1", s)
	}
}

func TestExpFloat64Moments(t *testing.T) {
	r := NewRNG(17)
	var w Welford
	for i := 0; i < 200000; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("exponential variate negative: %v", x)
		}
		w.Add(x)
	}
	if m := w.Mean(); math.Abs(m-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", m)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(19)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := NewRNG(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d -> %d", sum, got)
	}
}
