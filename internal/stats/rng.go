// Package stats provides the statistics substrate used throughout the
// repository: a deterministic random number generator, online moment
// trackers, exponentially weighted moving averages, histograms, streaming
// quantile estimators and reservoir sampling.
//
// Everything here is allocation-conscious and safe for single-goroutine use;
// callers that share an estimator across goroutines must synchronize
// externally (the stream operators in this repository are single-writer by
// construction).
package stats

import "math"

// RNG is a deterministic pseudo-random number generator based on
// splitmix64 seeding and the xoshiro256** generator. It exists so that
// experiments are reproducible across machines and Go versions, which the
// global math/rand source does not guarantee.
type RNG struct {
	s         [4]uint64
	spare     float64
	haveSpare bool
}

// NewRNG returns a generator deterministically derived from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 to spread the seed over the full state, as recommended by
	// the xoshiro authors; it never yields four zero outputs in a row, so
	// the absorbing all-zero state is unreachable.
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Int63 returns a non-negative random int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	max := uint64(n)
	// Rejection sampling below the threshold 2^64 mod max removes the
	// modulo bias. (-max) on uint64 equals 2^64-max, so (-max)%max is the
	// threshold without 128-bit arithmetic.
	threshold := -max % max
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % max)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 random bits scaled into [0,1); the standard construction.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Range returns a uniform float64 in [lo, hi).
func (r *RNG) Float64Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal variate via the Marsaglia polar
// method. One spare variate is cached between calls.
func (r *RNG) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (r *RNG) ExpFloat64() float64 {
	// Inverse transform; Float64 returns values < 1 so the log argument is
	// in (0, 1].
	return -math.Log(1 - r.Float64())
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
