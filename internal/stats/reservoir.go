package stats

// Reservoir maintains a uniform random sample of fixed capacity over an
// unbounded stream (Vitter's algorithm R). The quality estimator samples
// tuple values this way so that its per-aggregate error models can reason
// about the value distribution without retaining the stream.
type Reservoir struct {
	cap  int
	n    int64
	data []float64
	rng  *RNG
}

// NewReservoir returns a reservoir holding at most capacity samples, drawing
// randomness from the given RNG. It panics if capacity <= 0 or rng is nil.
func NewReservoir(capacity int, rng *RNG) *Reservoir {
	if capacity <= 0 {
		panic("stats: reservoir capacity must be positive")
	}
	if rng == nil {
		panic("stats: reservoir needs an RNG")
	}
	return &Reservoir{cap: capacity, rng: rng, data: make([]float64, 0, capacity)}
}

// Add offers x to the sample.
func (r *Reservoir) Add(x float64) {
	r.n++
	if len(r.data) < r.cap {
		r.data = append(r.data, x)
		return
	}
	// Replace a random element with probability cap/n.
	if j := r.rng.Int63() % r.n; j < int64(r.cap) {
		r.data[j] = x
	}
}

// N returns how many values were offered.
func (r *Reservoir) N() int64 { return r.n }

// Len returns the current sample size (min(cap, N)).
func (r *Reservoir) Len() int { return len(r.data) }

// Sample returns the current sample. The returned slice aliases internal
// storage; callers must not retain it across Add calls.
func (r *Reservoir) Sample() []float64 { return r.data }

// Mean returns the sample mean, or 0 when empty.
func (r *Reservoir) Mean() float64 {
	if len(r.data) == 0 {
		return 0
	}
	var s float64
	for _, x := range r.data {
		s += x
	}
	return s / float64(len(r.data))
}

// Reset discards the sample and the offer count.
func (r *Reservoir) Reset() {
	r.data = r.data[:0]
	r.n = 0
}
