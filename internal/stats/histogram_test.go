package stats

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if h.N() != 100 {
		t.Fatalf("N = %d, want 100", h.N())
	}
	if !almostEqual(h.Mean(), 49.5, 1e-9) {
		t.Fatalf("Mean = %v, want 49.5", h.Mean())
	}
	if h.Max() != 99 {
		t.Fatalf("Max = %v, want 99", h.Max())
	}
	if med := h.Quantile(0.5); math.Abs(med-50) > 10 {
		t.Fatalf("median = %v, want ~50", med)
	}
}

func TestHistogramUnderOverflow(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(-5)
	h.Add(100)
	h.Add(5)
	if h.N() != 3 {
		t.Fatalf("N = %d, want 3", h.N())
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("Quantile(0) = %v, want lo", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("Quantile(1) = %v, want max observed", q)
	}
}

func TestHistogramFracAbove(t *testing.T) {
	h := NewHistogram(0, 1000, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i))
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{-1, 1}, {500, 0.5}, {900, 0.1}, {2000, 0},
	}
	for _, c := range cases {
		if got := h.FracAbove(c.x); math.Abs(got-c.want) > 0.02 {
			t.Errorf("FracAbove(%v) = %v, want ~%v", c.x, got, c.want)
		}
	}
}

func TestHistogramFracAboveOverflowRegion(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(5)
	}
	for i := 0; i < 10; i++ {
		h.Add(50) // overflow bucket
	}
	if got := h.FracAbove(20); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("FracAbove(20) = %v, want 0.5 (overflow mass)", got)
	}
	if got := h.FracAbove(60); got != 0 {
		t.Fatalf("FracAbove beyond max = %v, want 0", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if h.Quantile(0.5) != 0 || h.FracAbove(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(3)
	h.Add(300)
	h.Reset()
	if h.N() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("Reset did not clear state")
	}
	h.Add(4)
	if h.N() != 1 {
		t.Fatal("histogram unusable after Reset")
	}
}

func TestHistogramQuantileAgainstExact(t *testing.T) {
	rng := NewRNG(59)
	h := NewHistogram(0, 500, 500)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 50
		h.Add(xs[i])
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := Percentile(xs, q)
		got := h.Quantile(q)
		if math.Abs(got-exact) > 0.05*exact+2 {
			t.Errorf("q=%v: hist %v vs exact %v", q, got, exact)
		}
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 4) },
		func() { NewHistogram(2, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(5)
	if s := h.String(); !strings.Contains(s, "n=1") {
		t.Fatalf("String() = %q, want count rendered", s)
	}
}
