package stats

import "math"

// Welford tracks count, mean and variance of a value stream in one pass
// using Welford's numerically stable online algorithm. The zero value is
// ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Remove un-incorporates a previously added x. Welford's recurrence runs
// backwards exactly, which windowed aggregates use to subtract expired
// tuples. Min/max are not maintained under removal (they stay conservative);
// use a monotonic deque (window.MinMax) when exact sliding min/max matter.
func (w *Welford) Remove(x float64) {
	if w.n == 0 {
		return
	}
	if w.n == 1 {
		*w = Welford{}
		return
	}
	mPrev := (float64(w.n)*w.mean - x) / float64(w.n-1)
	w.m2 -= (x - w.mean) * (x - mPrev)
	if w.m2 < 0 { // guard against rounding drift
		w.m2 = 0
	}
	w.mean = mPrev
	w.n--
}

// N returns the number of samples.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 for an empty tracker).
func (w *Welford) Mean() float64 { return w.mean }

// Sum returns the running sum.
func (w *Welford) Sum() float64 { return w.mean * float64(w.n) }

// Var returns the population variance.
func (w *Welford) Var() float64 {
	if w.n < 1 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVar returns the unbiased sample variance.
func (w *Welford) SampleVar() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest sample seen (0 for an empty tracker).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample seen (0 for an empty tracker).
func (w *Welford) Max() float64 { return w.max }

// Reset clears the tracker.
func (w *Welford) Reset() { *w = Welford{} }

// Merge combines another tracker into w using the parallel variance
// formula (Chan et al.). Min/max merge exactly.
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.mean += delta * float64(o.n) / float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha in (0, 1]; larger alpha weighs recent observations more. The zero
// value is invalid — use NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor. It panics if
// alpha is outside (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha must be in (0, 1]")
	}
	return &EWMA{alpha: alpha}
}

// Add incorporates x. The first observation seeds the average.
func (e *EWMA) Add(x float64) {
	if !e.init {
		e.value, e.init = x, true
		return
	}
	e.value += e.alpha * (x - e.value)
}

// Value returns the current average, or 0 before any observation.
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one observation was added.
func (e *EWMA) Initialized() bool { return e.init }

// Reset clears the average, keeping alpha.
func (e *EWMA) Reset() { e.value, e.init = 0, false }
