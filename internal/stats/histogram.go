package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-width bucket histogram over [lo, hi) with overflow
// and underflow buckets. It supports approximate quantiles by linear
// interpolation within a bucket, which is accurate enough for the
// lateness-distribution sketches used by the controller when the bucket
// width is small relative to the buffer granularity.
type Histogram struct {
	lo, hi  float64
	width   float64
	counts  []int64
	under   int64
	over    int64
	total   int64
	sum     float64
	maxSeen float64
}

// NewHistogram returns a histogram with n equal buckets covering [lo, hi).
// It panics if n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram needs at least one bucket")
	}
	if hi <= lo {
		panic("stats: histogram range must be non-empty")
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(n), counts: make([]int64, n)}
}

// Add incorporates x.
func (h *Histogram) Add(x float64) {
	h.total++
	h.sum += x
	if x > h.maxSeen {
		h.maxSeen = x
	}
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.counts) { // guard the hi boundary against fp rounding
			i = len(h.counts) - 1
		}
		h.counts[i]++
	}
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.total }

// Mean returns the exact mean of all observations.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max returns the exact maximum observation (0 if empty).
func (h *Histogram) Max() float64 { return h.maxSeen }

// Quantile returns an approximation of the q-quantile (q in [0, 1]) by
// walking buckets and interpolating. Underflow mass is attributed to lo and
// overflow mass to the maximum observed value.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.lo
	}
	if q >= 1 {
		return h.maxSeen
	}
	target := q * float64(h.total)
	cum := float64(h.under)
	if cum >= target {
		return h.lo
	}
	for i, c := range h.counts {
		next := cum + float64(c)
		if next >= target && c > 0 {
			frac := (target - cum) / float64(c)
			return h.lo + (float64(i)+frac)*h.width
		}
		cum = next
	}
	return h.maxSeen
}

// FracAbove returns the fraction of observations strictly greater than x,
// interpolating within the bucket containing x.
func (h *Histogram) FracAbove(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	if x < h.lo {
		return 1
	}
	if x >= h.hi {
		if x >= h.maxSeen {
			return 0
		}
		return float64(h.over) / float64(h.total)
	}
	i := int((x - h.lo) / h.width)
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	above := h.over
	for j := i + 1; j < len(h.counts); j++ {
		above += h.counts[j]
	}
	// Interpolate the partial bucket.
	bucketLo := h.lo + float64(i)*h.width
	frac := 1 - (x-bucketLo)/h.width
	return (float64(above) + frac*float64(h.counts[i])) / float64(h.total)
}

// Reset clears all counts, keeping the bucket layout.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.under, h.over, h.total, h.sum, h.maxSeen = 0, 0, 0, 0, 0
}

// String renders a compact textual sketch, useful in experiment logs.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hist[n=%d mean=%.3g p50=%.3g p95=%.3g p99=%.3g max=%.3g]",
		h.total, h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99), h.maxSeen)
	return b.String()
}

// Percentile computes the exact p-quantile (p in [0,1]) of xs using linear
// interpolation between closest ranks. It sorts a copy; use it for offline
// analysis, not per-tuple paths.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

// PercentileSorted computes the exact p-quantile of an already sorted slice.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	return percentileSorted(sorted, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	pos := p * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i] + frac*(s[i+1]-s[i])
}
