package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentileExact(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Fatal("percentile of empty slice should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Percentile mutated input: %v", xs)
	}
}

func TestP2AgainstExact(t *testing.T) {
	rng := NewRNG(41)
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
		e := NewP2(p)
		xs := make([]float64, 50000)
		for i := range xs {
			xs[i] = rng.ExpFloat64() * 100 // skewed like a delay distribution
			e.Add(xs[i])
		}
		exact := Percentile(xs, p)
		got := e.Value()
		// P² is a heuristic; accept 5% relative error on a smooth
		// distribution of this size.
		if math.Abs(got-exact) > 0.05*exact+1 {
			t.Errorf("P2(%v) = %v, exact %v", p, got, exact)
		}
	}
}

func TestP2SmallN(t *testing.T) {
	e := NewP2(0.5)
	if e.Value() != 0 {
		t.Fatal("empty P2 should return 0")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("single-sample P2 = %v, want 10", e.Value())
	}
	e.Add(20)
	e.Add(30)
	if got := e.Value(); got < 10 || got > 30 {
		t.Fatalf("3-sample median %v outside range", got)
	}
	if e.N() != 3 {
		t.Fatalf("N = %d, want 3", e.N())
	}
}

func TestP2PanicsOnBadQuantile(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewP2(%v) did not panic", p)
				}
			}()
			NewP2(p)
		}()
	}
}

func TestGKRankErrorBound(t *testing.T) {
	rng := NewRNG(43)
	const eps = 0.01
	const n = 20000
	g := NewGK(eps)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64Range(0, 1000)
		g.Add(xs[i])
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		v := g.Quantile(q)
		// Verify the rank of v is within eps*n of the target rank.
		rank := sort.SearchFloat64s(xs, v)
		target := q * n
		if math.Abs(float64(rank)-target) > 2*eps*n+1 {
			t.Errorf("q=%v: value %v has rank %d, target %v (allow ±%v)",
				q, v, rank, target, 2*eps*n)
		}
	}
}

func TestGKExtremes(t *testing.T) {
	g := NewGK(0.05)
	for i := 1; i <= 1000; i++ {
		g.Add(float64(i))
	}
	if v := g.Quantile(0); v > 1000*0.05*2+1 {
		t.Errorf("Quantile(0) = %v, want near 1", v)
	}
	if v := g.Quantile(1); v < 1000*(1-0.05*2)-1 {
		t.Errorf("Quantile(1) = %v, want near 1000", v)
	}
}

func TestGKEmpty(t *testing.T) {
	g := NewGK(0.01)
	if g.Quantile(0.5) != 0 {
		t.Fatal("empty GK quantile should be 0")
	}
	if g.FracAbove(10) != 0 {
		t.Fatal("empty GK FracAbove should be 0")
	}
	if g.N() != 0 {
		t.Fatal("empty GK N should be 0")
	}
}

func TestGKFracAbove(t *testing.T) {
	g := NewGK(0.01)
	const n = 10000
	for i := 0; i < n; i++ {
		g.Add(float64(i))
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{-1, 1}, {float64(n), 0}, {float64(n) / 2, 0.5}, {float64(n) / 4, 0.75},
	}
	for _, c := range cases {
		if got := g.FracAbove(c.x); math.Abs(got-c.want) > 0.03 {
			t.Errorf("FracAbove(%v) = %v, want ~%v", c.x, got, c.want)
		}
	}
}

func TestGKMemoryBounded(t *testing.T) {
	g := NewGK(0.01)
	rng := NewRNG(47)
	for i := 0; i < 200000; i++ {
		g.Add(rng.Float64())
	}
	// The summary should be far smaller than the input; the theoretical
	// bound is O((1/eps) log(eps n)) ≈ a few thousand entries at most.
	if s := g.Size(); s > 20000 {
		t.Fatalf("GK summary grew to %d entries for 200k inputs", s)
	}
}

func TestGKMonotoneQuantiles(t *testing.T) {
	rng := NewRNG(53)
	g := NewGK(0.02)
	for i := 0; i < 5000; i++ {
		g.Add(rng.NormFloat64())
	}
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw) / 65535
		b := float64(bRaw) / 65535
		if a > b {
			a, b = b, a
		}
		return g.Quantile(a) <= g.Quantile(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGKSortedInsertions(t *testing.T) {
	// Sorted and reverse-sorted inputs are the adversarial cases for
	// summary maintenance.
	for name, gen := range map[string]func(i int) float64{
		"ascending":  func(i int) float64 { return float64(i) },
		"descending": func(i int) float64 { return float64(10000 - i) },
	} {
		g := NewGK(0.02)
		for i := 0; i < 10000; i++ {
			g.Add(gen(i))
		}
		med := g.Quantile(0.5)
		if math.Abs(med-5000) > 10000*0.05 {
			t.Errorf("%s: median %v, want ~5000", name, med)
		}
	}
}
