package stats

import (
	"math"
	"sort"
	"testing"
)

// FuzzGKQuantile checks the Greenwald–Khanna rank-error guarantee on
// arbitrary byte-derived inputs (run with `go test -fuzz=FuzzGKQuantile`;
// the seeds below also run as ordinary tests).
func FuzzGKQuantile(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 0.5)
	f.Add([]byte{255, 254, 253, 0, 0, 0}, 0.9)
	f.Add([]byte{9}, 0.01)
	f.Add([]byte{}, 0.99)
	f.Fuzz(func(t *testing.T, data []byte, q float64) {
		if math.IsNaN(q) || q < 0 || q > 1 {
			q = 0.5
		}
		const eps = 0.05
		g := NewGK(eps)
		xs := make([]float64, 0, len(data)*4)
		// Derive a value stream from the bytes with some repetition to
		// exercise duplicate handling.
		for i, b := range data {
			v := float64(b) + float64(i%7)/10
			for r := 0; r <= int(b)%3; r++ {
				g.Add(v)
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			if got := g.Quantile(q); got != 0 {
				t.Fatalf("empty sketch quantile = %v", got)
			}
			return
		}
		got := g.Quantile(q)
		sort.Float64s(xs)
		// Rank of got must be within 2*eps*n + 1 of the target rank.
		lo := sort.SearchFloat64s(xs, got)
		hi := sort.Search(len(xs), func(i int) bool { return xs[i] > got })
		target := q * float64(len(xs))
		allow := 2*eps*float64(len(xs)) + 1
		if float64(hi) < target-allow || float64(lo) > target+allow {
			t.Fatalf("rank error: value %v has rank [%d,%d], target %v ± %v (n=%d)",
				got, lo, hi, target, allow, len(xs))
		}
		// FracAbove must be consistent with the data within the same bound.
		above := g.FracAbove(got)
		trueAbove := float64(len(xs)-hi) / float64(len(xs))
		if math.Abs(above-trueAbove) > 2*eps+2.0/float64(len(xs)) {
			t.Fatalf("FracAbove(%v) = %v, true %v", got, above, trueAbove)
		}
	})
}

// FuzzP2Bounds checks the P² estimator always returns a value within the
// observed range.
func FuzzP2Bounds(f *testing.F) {
	f.Add([]byte{10, 20, 30, 40, 50, 60})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		e := NewP2(0.9)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, b := range data {
			v := float64(b)
			e.Add(v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		got := e.Value()
		if got < lo-1e-9 || got > hi+1e-9 {
			t.Fatalf("P2 value %v outside observed range [%v, %v]", got, lo, hi)
		}
	})
}
