package stats

// This file exports and restores the internal state of the statistics
// primitives for crash-consistent snapshots (internal/durable). Every
// State/Restore pair is exact: restoring a state into a fresh instance and
// feeding it the same suffix of observations produces bit-identical outputs
// to the uninterrupted original. That property is what lets the recovery
// path replay a journal suffix and land on the same emitted results, and it
// is enforced by continuation tests in state_test.go and by the DST crash
// oracle.
//
// Configuration that is fixed at construction time (GK epsilon, EWMA alpha,
// reservoir capacity, P2 target quantile) is deliberately NOT part of the
// state: snapshots are only ever restored into an instance built from the
// same query definition, and keeping config out of the state means a
// restored instance can never silently change the query's parameters.

// RNGState is the exported state of an RNG.
type RNGState struct {
	S         [4]uint64 `json:"s"`
	Spare     float64   `json:"spare,omitempty"`
	HaveSpare bool      `json:"haveSpare,omitempty"`
}

// State exports the generator state.
func (r *RNG) State() RNGState {
	return RNGState{S: r.s, Spare: r.spare, HaveSpare: r.haveSpare}
}

// Restore sets the generator to a previously exported state.
func (r *RNG) Restore(st RNGState) {
	r.s = st.S
	r.spare = st.Spare
	r.haveSpare = st.HaveSpare
}

// WelfordState is the exported state of a Welford tracker.
type WelfordState struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// State exports the tracker state.
func (w *Welford) State() WelfordState {
	return WelfordState{N: w.n, Mean: w.mean, M2: w.m2, Min: w.min, Max: w.max}
}

// Restore sets the tracker to a previously exported state.
func (w *Welford) Restore(st WelfordState) {
	w.n, w.mean, w.m2, w.min, w.max = st.N, st.Mean, st.M2, st.Min, st.Max
}

// EWMAState is the exported state of an EWMA. The smoothing factor is
// construction-time configuration and is not part of the state.
type EWMAState struct {
	Value float64 `json:"value"`
	Init  bool    `json:"init"`
}

// State exports the average's state.
func (e *EWMA) State() EWMAState { return EWMAState{Value: e.value, Init: e.init} }

// Restore sets the average to a previously exported state, keeping alpha.
func (e *EWMA) Restore(st EWMAState) { e.value, e.init = st.Value, st.Init }

// ReservoirState is the exported state of a Reservoir. Capacity and the
// RNG are construction-time configuration (the estimator snapshots its RNG
// separately, since the reservoir shares it).
type ReservoirState struct {
	N    int64     `json:"n"`
	Data []float64 `json:"data"`
}

// State exports the sample. The returned slice is a copy.
func (r *Reservoir) State() ReservoirState {
	data := make([]float64, len(r.data))
	copy(data, r.data)
	return ReservoirState{N: r.n, Data: data}
}

// Restore sets the reservoir to a previously exported state. It panics if
// the saved sample exceeds the reservoir's capacity (state from a
// differently-configured query).
func (r *Reservoir) Restore(st ReservoirState) {
	if len(st.Data) > r.cap {
		panic("stats: reservoir state exceeds capacity")
	}
	r.n = st.N
	r.data = append(r.data[:0], st.Data...)
}

// GKEntry is one exported Greenwald–Khanna summary tuple.
type GKEntry struct {
	V     float64 `json:"v"`
	G     int64   `json:"g"`
	Delta int64   `json:"delta"`
}

// GKState is the exported state of a GK sketch. Pending is exported
// verbatim rather than flushed: flushing at snapshot time would compress
// the summary earlier than the uninterrupted run would, changing its future
// evolution and breaking exact replay.
type GKState struct {
	N       int64     `json:"n"`
	Entries []GKEntry `json:"entries"`
	Pending []float64 `json:"pending,omitempty"`
}

// State exports the sketch state without side effects.
func (g *GK) State() GKState {
	st := GKState{N: g.n}
	st.Entries = make([]GKEntry, len(g.entries))
	for i, e := range g.entries {
		st.Entries[i] = GKEntry{V: e.v, G: e.g, Delta: e.delta}
	}
	if len(g.pending) > 0 {
		st.Pending = append([]float64(nil), g.pending...)
	}
	return st
}

// Restore sets the sketch to a previously exported state, keeping epsilon.
func (g *GK) Restore(st GKState) {
	g.n = st.N
	g.entries = make([]gkEntry, len(st.Entries))
	for i, e := range st.Entries {
		g.entries[i] = gkEntry{v: e.V, g: e.G, delta: e.Delta}
	}
	g.pending = append(g.pending[:0], st.Pending...)
	g.cumG = g.cumG[:0]
	g.dirty = true
}
