package stats

import (
	"math"
	"testing"
)

// drainMixed draws a deterministic mix of variates, returning a digest-ish
// slice so callers can compare two generators draw by draw.
func drainMixed(r *RNG, n int) []float64 {
	out := make([]float64, 0, 4*n)
	for i := 0; i < n; i++ {
		out = append(out,
			float64(r.Uint64()),
			r.Float64(),
			r.NormFloat64(), // exercises the cached spare
			float64(r.Intn(1000)),
		)
	}
	return out
}

func TestRNGStateContinuation(t *testing.T) {
	a := NewRNG(42)
	drainMixed(a, 137) // leave the generator mid-sequence, spare possibly cached
	st := a.State()

	b := NewRNG(7) // deliberately different seed; Restore must fully overwrite
	b.Restore(st)

	got := drainMixed(b, 500)
	want := drainMixed(a, 500)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("draw %d diverged: restored=%v original=%v", i, got[i], want[i])
		}
	}
}

func TestRNGStateCapturesSpare(t *testing.T) {
	a := NewRNG(1)
	a.NormFloat64() // polar method caches one spare variate
	st := a.State()
	if !st.HaveSpare {
		t.Fatalf("expected cached spare after one NormFloat64 draw")
	}
	b := NewRNG(2)
	b.Restore(st)
	if g, w := b.NormFloat64(), a.NormFloat64(); g != w {
		t.Fatalf("spare variate not restored: got %v want %v", g, w)
	}
}

func TestWelfordStateContinuation(t *testing.T) {
	rng := NewRNG(3)
	var a Welford
	for i := 0; i < 321; i++ {
		a.Add(rng.NormFloat64() * 10)
	}
	st := a.State()

	var b Welford
	b.Restore(st)
	for i := 0; i < 200; i++ {
		v := rng.Float64Range(-5, 5)
		a.Add(v)
		b.Add(v)
	}
	if a != b {
		t.Fatalf("welford diverged after restore: %+v vs %+v", a, b)
	}
	if a.N() != 521 || a.Min() >= a.Max() {
		t.Fatalf("implausible tracker state: %+v", a)
	}
}

func TestEWMAStateContinuation(t *testing.T) {
	a := NewEWMA(0.3)
	st0 := a.State()
	if st0.Init {
		t.Fatalf("fresh EWMA must export uninitialized state")
	}
	a.Add(5)
	a.Add(7)
	st := a.State()

	b := NewEWMA(0.3)
	b.Restore(st)
	for _, v := range []float64{1, 2, 3, 9, -4} {
		a.Add(v)
		b.Add(v)
	}
	if a.Value() != b.Value() || a.Initialized() != b.Initialized() {
		t.Fatalf("ewma diverged: %v vs %v", a.Value(), b.Value())
	}
}

func TestReservoirStateContinuation(t *testing.T) {
	rngA := NewRNG(11)
	a := NewReservoir(32, rngA)
	for i := 0; i < 500; i++ {
		a.Add(rngA.Float64())
	}
	resSt := a.State()
	rngSt := rngA.State()

	rngB := NewRNG(99)
	rngB.Restore(rngSt) // reservoir replacement draws must line up too
	b := NewReservoir(32, rngB)
	b.Restore(resSt)

	for i := 0; i < 500; i++ {
		v := float64(i) * 0.25
		a.Add(v)
		b.Add(v)
	}
	if a.N() != b.N() || a.Len() != b.Len() {
		t.Fatalf("reservoir counters diverged: n=%d/%d len=%d/%d", a.N(), b.N(), a.Len(), b.Len())
	}
	for i, v := range a.Sample() {
		if b.Sample()[i] != v {
			t.Fatalf("sample slot %d diverged: %v vs %v", i, b.Sample()[i], v)
		}
	}
}

func TestReservoirRestoreRejectsOversizedState(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic restoring oversized reservoir state")
		}
	}()
	r := NewReservoir(2, NewRNG(1))
	r.Restore(ReservoirState{N: 5, Data: []float64{1, 2, 3}})
}

func TestGKStateContinuation(t *testing.T) {
	rng := NewRNG(17)
	a := NewGK(0.01)
	// Feed enough to force several flush/compress cycles, then stop at a
	// count that is not a flush-threshold multiple so pending is non-empty.
	for i := 0; i < 1234; i++ {
		a.Add(rng.ExpFloat64() * 100)
	}
	st := a.State()
	if len(st.Pending) == 0 {
		t.Fatalf("test setup: expected non-empty pending buffer at snapshot point")
	}

	b := NewGK(0.01)
	b.Restore(st)

	// Same suffix into both; quantile reads interleaved with adds mirror how
	// the adaptive controller probes the sketch mid-stream.
	for i := 0; i < 2000; i++ {
		v := rng.ExpFloat64() * 100
		a.Add(v)
		b.Add(v)
		if i%97 == 0 {
			for _, q := range []float64{0.5, 0.9, 0.99} {
				if ga, gb := a.Quantile(q), b.Quantile(q); ga != gb {
					t.Fatalf("quantile(%v) diverged at step %d: %v vs %v", q, i, ga, gb)
				}
			}
			if fa, fb := a.FracAbove(50), b.FracAbove(50); fa != fb {
				t.Fatalf("fracAbove diverged at step %d: %v vs %v", i, fa, fb)
			}
		}
	}
	if a.N() != b.N() || a.Size() != b.Size() {
		t.Fatalf("summary shape diverged: n=%d/%d size=%d/%d", a.N(), b.N(), a.Size(), b.Size())
	}
}

func TestGKStateExportHasNoSideEffects(t *testing.T) {
	a := NewGK(0.05)
	for i := 0; i < 20; i++ {
		a.Add(float64(i))
	}
	before := len(a.pending)
	_ = a.State()
	if len(a.pending) != before {
		t.Fatalf("State flushed the pending buffer (%d -> %d); export must be side-effect free",
			before, len(a.pending))
	}
}

func TestStateRoundTripIsValueIdentical(t *testing.T) {
	// NaN-free guarantee for snapshot JSON: states built from finite inputs
	// must contain only finite numbers.
	rng := NewRNG(5)
	var w Welford
	g := NewGK(0.02)
	for i := 0; i < 100; i++ {
		v := rng.NormFloat64()
		w.Add(v)
		g.Add(v)
	}
	ws := w.State()
	for _, v := range []float64{ws.Mean, ws.M2, ws.Min, ws.Max} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite welford state: %+v", ws)
		}
	}
	for _, e := range g.State().Entries {
		if math.IsNaN(e.V) || math.IsInf(e.V, 0) {
			t.Fatalf("non-finite GK entry: %+v", e)
		}
	}
}
