package dst

import (
	"os"
	"strconv"
	"testing"
)

// crashSeeds returns how many seeds the crash sweep covers:
// DST_CRASH_SEEDS when set, a smoke budget otherwise (the `make crash`
// target raises it; a 100+ seed run is part of the acceptance evidence).
func crashSeeds(t *testing.T) int {
	if s := os.Getenv("DST_CRASH_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("DST_CRASH_SEEDS=%q: want a positive integer", s)
		}
		return n
	}
	if testing.Short() {
		return 4
	}
	return 12
}

// TestCrashSweep executes the seed-derived crash matrix: randomized crash
// points, commit/snapshot cadences, tail damage and executor choice, each
// checked by the crash-continuation oracle and (for adaptive plans) the
// θ quality contract across the crash.
func TestCrashSweep(t *testing.T) {
	n := crashSeeds(t)
	for seed := 0; seed < n; seed++ {
		seed := uint64(seed)
		t.Run(strconv.FormatUint(seed, 10), func(t *testing.T) {
			t.Parallel()
			cp := CrashPlanForSeed(seed)
			o, err := ExecuteCrash(cp, t.TempDir())
			if err != nil {
				t.Fatalf("%s: %v", cp, err)
			}
			if len(o.Failures) > 0 {
				t.Errorf("%s failed crash oracle (items=%d cut=%d durable=%d lost=%d): %v",
					cp, o.Items, o.Cut, o.Durable, o.Lost, o.Failures)
			}
		})
	}
}

// TestCrashDeterminism replays synchronous crash plans twice in fresh
// directories: the crash point, the surviving prefix and the recovered
// output must be byte-identical. (Concurrent plans are exempt: whether the
// dying pipeline's last emit-progress record reached the OS is
// schedule-dependent, so the recovered floor — though always correct — is
// not a pure function of the seed.)
func TestCrashDeterminism(t *testing.T) {
	checked := 0
	for seed := uint64(0); checked < 3 && seed < 40; seed++ {
		cp := CrashPlanForSeed(seed)
		if cp.Concurrent {
			continue
		}
		checked++
		a, err := ExecuteCrash(cp, t.TempDir())
		if err != nil {
			t.Fatalf("%s: %v", cp, err)
		}
		b, err := ExecuteCrash(cp, t.TempDir())
		if err != nil {
			t.Fatalf("%s (replay): %v", cp, err)
		}
		if a.Durable != b.Durable || a.Lost != b.Lost {
			t.Errorf("%s: durable prefix diverged across replays: %d/%d vs %d/%d",
				cp, a.Durable, a.Lost, b.Durable, b.Lost)
		}
		if a.OutputDigest == "" || a.OutputDigest != b.OutputDigest {
			t.Errorf("%s: recovered output diverged: %.12s vs %.12s", cp, a.OutputDigest, b.OutputDigest)
		}
	}
}
