package dst

// Shrink greedily reduces a failing plan to a smaller one that still
// fails, so committed regression transcripts are minimal and the failure
// is legible. fails must report whether a plan reproduces the failure
// (typically: Execute(p) has a non-empty Failures list); budget caps the
// number of candidate executions (<=0 means 64).
//
// The reduction passes run in a fixed order — halve the workload, strip
// fault dimensions, collapse engine parallelism, simplify pacing and
// delays — and restart from the top after every accepted candidate, so
// the result is a local minimum: no single remaining reduction passes.
func Shrink(p Plan, fails func(Plan) bool, budget int) Plan {
	if budget <= 0 {
		budget = 64
	}
	for {
		next, ok := shrinkStep(p, fails, &budget)
		if !ok {
			return p
		}
		p = next
	}
}

// shrinkStep tries every candidate reduction of p in order and returns
// the first that still fails.
func shrinkStep(p Plan, fails func(Plan) bool, budget *int) (Plan, bool) {
	for _, cand := range candidates(p) {
		if *budget <= 0 {
			return p, false
		}
		*budget--
		if fails(cand) {
			return cand, true
		}
	}
	return p, false
}

// candidates enumerates one-step reductions of p, most aggressive first.
func candidates(p Plan) []Plan {
	var out []Plan
	try := func(mut func(*Plan)) {
		c := p
		mut(&c)
		out = append(out, c)
	}

	// The wire dimension goes first: if the failure reproduces without
	// the netstream round trip, the transport was never the cause and
	// every later reduction runs without it.
	if p.Net {
		try(func(c *Plan) { c.Net = false })
	}
	if p.N > 400 {
		try(func(c *Plan) { c.N /= 2 })
		try(func(c *Plan) { c.N = c.N * 3 / 4 })
	}
	if p.Chaos.ErrRate > 0 {
		try(func(c *Plan) { c.Chaos.ErrRate = 0 })
	}
	if p.Chaos.StallRate > 0 {
		try(func(c *Plan) { c.Chaos.StallRate, c.Chaos.StallMS = 0, 0 })
	}
	if p.Chaos.DupRate > 0 {
		try(func(c *Plan) { c.Chaos.DupRate = 0 })
	}
	if p.Chaos.SpikeRate > 0 {
		try(func(c *Plan) { c.Chaos.SpikeRate, c.Chaos.SpikeLen = 0, 0 })
	}
	if p.Chaos.CutAfter > 0 {
		try(func(c *Plan) { c.Chaos.CutAfter = 0 })
	}
	if p.Heartbeat > 0 {
		try(func(c *Plan) { c.Heartbeat = 0 })
	}
	if p.Poisson {
		try(func(c *Plan) { c.Poisson = false })
	}
	if p.Fanout > 1 {
		try(func(c *Plan) { c.Fanout = 0 })
		if p.Fanout > 2 {
			try(func(c *Plan) { c.Fanout = 2 })
		}
	}
	if p.Shards > 1 {
		try(func(c *Plan) { c.Shards = 1 })
	}
	if p.NumKeys > 1 {
		try(func(c *Plan) { c.NumKeys, c.Shards = 0, 0 })
	}
	if p.Batch > 1 {
		try(func(c *Plan) { c.Batch = 1 })
	}
	if p.Refine > 0 {
		try(func(c *Plan) { c.Refine = 0 })
	}
	if p.Core != "" {
		// The flip-core contract still runs either way; this only simplifies
		// which core is primary.
		try(func(c *Plan) { c.Core = "" })
	}
	if p.Values != "constant" {
		try(func(c *Plan) { c.Values = "constant" })
	}
	if p.Delay.Kind != "zero" && p.Delay.Kind != "exp" {
		try(func(c *Plan) { c.Delay.Kind = "exp" })
	}
	if p.Delay.Mean > 100 {
		try(func(c *Plan) { c.Delay.Mean = 100 })
	}
	return out
}
