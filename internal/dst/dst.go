// Package dst is the deterministic simulation-testing harness for the
// concurrent continuous-query engine. It closes the evidence gap PR 3
// left open: the engine's core contracts — concurrent output byte-equal
// to the synchronous executor, realized quality within the user's bound
// θ, metamorphic invariances — were asserted only at a handful of
// hand-picked configurations. dst sweeps them across a seed-derived
// matrix of workloads × delay distributions × fault plans × engine
// shapes, with every run replayable byte-for-byte from its seed.
//
// Three properties make a run deterministic:
//
//   - All randomness (workload generation, chaos fault schedules, retry
//     jitter, plan derivation) flows from seeded stats.RNG instances; no
//     global RNG, no map-iteration dependence.
//   - Time is virtual: the Scheduler implements resilience.Clock, so
//     chaos stalls and retry backoffs advance simulated time instantly
//     instead of sleeping. Simulated and production runs share one code
//     path — only the injected clock differs (cq.AggQuery.Clock,
//     resilience.FaultSource.WithClock, resilience.Retry.Clock).
//   - The engine's own output contract (batched transport and the
//     sharded merge preserve the synchronous executor's output exactly)
//     removes goroutine-schedule dependence from everything the harness
//     observes. Plans therefore never enable load shedding — sheds are
//     decided by live queue depth, the one intentionally
//     schedule-dependent behaviour in the engine — so a DST plan's
//     output is a pure function of its seed.
//
// A failing plan is shrunk (see Shrink) to a minimal configuration that
// still fails and written to testdata/ as a Transcript: the plan, the
// event-transcript digest and the failure, small enough to commit and
// replay as a regression test.
package dst

import (
	"context"
	"sync"
	"time"

	"repro/internal/stream"
)

// schedEvent is one callback scheduled on the virtual timeline.
type schedEvent struct {
	at  time.Time
	seq uint64
	fn  func()
}

// Scheduler is a seed-reproducible virtual-time scheduler. It advances
// time only through the explicit Advance/AdvanceTo/Sleep/Step calls —
// never by waiting — and fires scheduled callbacks in (time, schedule
// order). It implements resilience.Clock, so pipeline components that
// would sleep on the wall clock (chaos stalls, retry backoff, breaker
// cooldowns) instead move simulated time forward instantly.
//
// The scheduler is safe for concurrent use: the engine's source stage
// calls Sleep from its own goroutine while the harness reads Now. Within
// one run the pipeline has a single time-consuming goroutine (the source
// stage owns the chaos source and the retrier), so concurrent sleeps
// never race for ordering — the mutex is about memory safety under
// -race, not about scheduling policy.
type Scheduler struct {
	mu    sync.Mutex
	now   time.Time
	seq   uint64
	queue []schedEvent

	slept time.Duration // cumulative virtual time consumed by Sleep
}

// simEpoch anchors virtual time. The concrete value is arbitrary but
// fixed: transcripts must not depend on when the simulation ran.
var simEpoch = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

// NewScheduler returns a scheduler positioned at the fixed simulation
// epoch.
func NewScheduler() *Scheduler { return &Scheduler{now: simEpoch} }

// Now implements resilience.Clock.
func (s *Scheduler) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Elapsed returns how much virtual time has passed since the epoch.
func (s *Scheduler) Elapsed() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now.Sub(simEpoch)
}

// Slept returns the cumulative virtual time consumed via Sleep — the
// wall-clock time a production run would have burnt in stalls and
// backoffs.
func (s *Scheduler) Slept() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.slept
}

// Sleep implements resilience.Clock: simulated waiting is instantaneous —
// the virtual clock jumps forward by d and any callbacks that became due
// fire before Sleep returns. The context is only checked, never waited
// on, so a cancelled pipeline still unwinds promptly.
func (s *Scheduler) Sleep(ctx context.Context, d time.Duration) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if d <= 0 {
		return nil
	}
	s.mu.Lock()
	s.slept += d
	s.advanceLocked(s.now.Add(d))
	s.mu.Unlock()
	return nil
}

// Advance moves virtual time forward by d, firing due callbacks.
func (s *Scheduler) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	s.advanceLocked(s.now.Add(d))
	s.mu.Unlock()
}

// AdvanceTo moves virtual time forward to t (a no-op if t is in the
// past), firing due callbacks.
func (s *Scheduler) AdvanceTo(t time.Time) {
	s.mu.Lock()
	s.advanceLocked(t)
	s.mu.Unlock()
}

// AdvanceToStream positions virtual time at stream-time st, using the
// repository convention of one stream-time unit per millisecond. The
// paced source uses it to keep Now aligned with the arrival position of
// the item being delivered.
func (s *Scheduler) AdvanceToStream(st stream.Time) {
	s.AdvanceTo(simEpoch.Add(time.Duration(st) * time.Millisecond))
}

// Schedule registers fn to fire when virtual time reaches now+d. Events
// at equal times fire in schedule order.
func (s *Scheduler) Schedule(d time.Duration, fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	s.push(schedEvent{at: s.now.Add(d), seq: s.seq, fn: fn})
}

// Step fires the single next scheduled callback, jumping virtual time to
// its deadline. It reports false when nothing is scheduled.
func (s *Scheduler) Step() bool {
	s.mu.Lock()
	if len(s.queue) == 0 {
		s.mu.Unlock()
		return false
	}
	e := s.pop()
	s.now = e.at
	s.mu.Unlock()
	e.fn() // outside the lock: callbacks may schedule further events
	return true
}

// Pending returns the number of scheduled callbacks not yet fired.
func (s *Scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// advanceLocked moves time to target (monotonically) and fires every
// callback whose deadline is reached, in (time, schedule) order. Caller
// holds mu; callbacks run with mu released so they may re-schedule.
func (s *Scheduler) advanceLocked(target time.Time) {
	if target.Before(s.now) {
		return
	}
	for len(s.queue) > 0 && !s.queue[0].at.After(target) {
		e := s.pop()
		s.now = e.at
		s.mu.Unlock()
		e.fn()
		s.mu.Lock()
		if target.Before(s.now) { // a callback advanced past the target
			return
		}
	}
	s.now = target
}

func eventLess(a, b schedEvent) bool {
	if !a.at.Equal(b.at) {
		return a.at.Before(b.at)
	}
	return a.seq < b.seq
}

func (s *Scheduler) push(e schedEvent) {
	s.queue = append(s.queue, e)
	i := len(s.queue) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(s.queue[i], s.queue[parent]) {
			break
		}
		s.queue[i], s.queue[parent] = s.queue[parent], s.queue[i]
		i = parent
	}
}

func (s *Scheduler) pop() schedEvent {
	top := s.queue[0]
	n := len(s.queue) - 1
	s.queue[0] = s.queue[n]
	s.queue = s.queue[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(s.queue) && eventLess(s.queue[l], s.queue[smallest]) {
			smallest = l
		}
		if r < len(s.queue) && eventLess(s.queue[r], s.queue[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		s.queue[i], s.queue[smallest] = s.queue[smallest], s.queue[i]
		i = smallest
	}
}

// pacedSource wraps an item source so that delivering an item first
// advances the scheduler to the item's arrival position — virtual time
// tracks the stream, which is what timestamps any stall or backoff that
// fires between deliveries.
type pacedSource struct {
	src   stream.ErrSource
	sched *Scheduler
}

// NextErr implements stream.ErrSource.
func (p *pacedSource) NextErr() (stream.Item, bool, error) {
	it, ok, err := p.src.NextErr()
	if err != nil || !ok {
		return it, ok, err
	}
	if it.Heartbeat {
		p.sched.AdvanceToStream(it.Watermark)
	} else {
		p.sched.AdvanceToStream(it.Tuple.Arrival)
	}
	return it, ok, nil
}
