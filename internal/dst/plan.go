package dst

import (
	"fmt"
	"time"

	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/resilience"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/window"
)

// Plan is one fully-specified simulation: workload, delay distribution,
// fault plan and engine shape, all derived from (or shrunk relative to) a
// single seed. A Plan is a pure value — executing it twice yields
// byte-identical transcripts and outputs — and is JSON-serializable so
// shrunk failures can be committed to testdata/ and replayed.
type Plan struct {
	Seed uint64 `json:"seed"`

	// Workload.
	N        int         `json:"n"`
	Interval stream.Time `json:"interval"`
	Poisson  bool        `json:"poisson,omitempty"`
	NumKeys  int         `json:"num_keys,omitempty"` // <=1 means ungrouped
	// Values is the payload generator kind. DST workloads use integer
	// payloads ("uniform-int", "constant") so that aggregate sums are
	// exact in float64 and output comparisons can demand bit equality
	// without tripping over float reassociation.
	Values string `json:"values"`

	// Delay distribution.
	Delay DelayPlan `json:"delay"`

	// Heartbeat interval in arrival time (0 = no heartbeats).
	Heartbeat stream.Time `json:"heartbeat,omitempty"`

	// Query shape.
	Window stream.Time `json:"window"`
	Slide  stream.Time `json:"slide"`
	Agg    string      `json:"agg"`              // sum | count | avg | max | median | distinct
	Refine stream.Time `json:"refine,omitempty"` // >0: RefineLate horizon
	// Core selects the window aggregation core ("" = legacy, "fiba").
	// Whatever the plan says, Execute also runs a flipped-core reference
	// and demands identical output, so every seed proves cross-core
	// equivalence. Committed pre-core transcripts deserialize to "" and
	// replay unchanged.
	Core    string      `json:"core,omitempty"`
	Handler HandlerPlan `json:"handler"`

	// Engine shape.
	Batch  int `json:"batch"`
	Shards int `json:"shards,omitempty"`

	// Fault plan. Sheds are deliberately impossible (DST plans never set
	// an overload policy): shedding decisions depend on live queue depth,
	// the one schedule-dependent behaviour in the engine, and would break
	// seed-reproducibility.
	Chaos ChaosPlan `json:"chaos"`

	// Fanout, when >1, adds the shared-source contract: the transcript is
	// pumped once through a fanout.Broadcast and Fanout replica queries of
	// the plan's shape must each reproduce the synchronous run byte for
	// byte. Subscriptions are Block — the lossless policy — because DST
	// plans never shed (see Chaos above).
	Fanout int `json:"fanout,omitempty"`

	// Net, when set, adds the wire-transport contract: the transcript is
	// replayed through the netstream line protocol over an in-memory
	// net.Pipe and the decoded sequence must digest — and aggregate —
	// identically to the direct feed (see net.go).
	Net bool `json:"net,omitempty"`
}

// DelayPlan selects a delay model by name so plans stay serializable.
type DelayPlan struct {
	Kind string  `json:"kind"` // zero | constant | exp | normal | pareto | burst | step
	Mean float64 `json:"mean,omitempty"`
}

// Model materializes the delay model.
func (d DelayPlan) Model() delay.Model {
	switch d.Kind {
	case "zero", "":
		return delay.Zero{}
	case "constant":
		return delay.Constant{D: d.Mean}
	case "exp":
		return delay.Exponential{MeanD: d.Mean}
	case "normal":
		return delay.Normal{Mu: d.Mean, Sigma: d.Mean / 4}
	case "pareto":
		return delay.ParetoWithMean(d.Mean, 1.8)
	case "burst":
		return delay.Burst{
			Base:     delay.Exponential{MeanD: d.Mean},
			Factor:   5,
			Period:   30 * stream.Second,
			BurstLen: 3 * stream.Second,
		}
	case "step":
		return delay.Step{
			Before: delay.Exponential{MeanD: d.Mean},
			After:  delay.Exponential{MeanD: 3 * d.Mean},
			At:     20 * stream.Second,
		}
	default:
		panic(fmt.Sprintf("dst: unknown delay kind %q", d.Kind))
	}
}

// HandlerPlan selects the disorder handler.
type HandlerPlan struct {
	Kind  string      `json:"kind"`            // kslack | maxslack | aq
	K     stream.Time `json:"k,omitempty"`     // kslack
	Theta float64     `json:"theta,omitempty"` // aq
}

// ChaosPlan is the serializable subset of resilience.Chaos a DST plan may
// enable. Stall durations are virtual time (served by the Scheduler).
type ChaosPlan struct {
	ErrRate   float64 `json:"err_rate,omitempty"`
	StallRate float64 `json:"stall_rate,omitempty"`
	StallMS   int     `json:"stall_ms,omitempty"`
	DupRate   float64 `json:"dup_rate,omitempty"`
	SpikeRate float64 `json:"spike_rate,omitempty"`
	SpikeLen  int     `json:"spike_len,omitempty"`
	CutAfter  int64   `json:"cut_after,omitempty"`
}

// enabled reports whether any fault is configured.
func (c ChaosPlan) enabled() bool {
	return c.ErrRate > 0 || c.StallRate > 0 || c.DupRate > 0 || c.SpikeRate > 0 || c.CutAfter > 0
}

// chaos materializes the resilience config; the fault RNG is seeded from
// the plan seed so the schedule replays.
func (p Plan) chaos() resilience.Chaos {
	return resilience.Chaos{
		Seed:      p.Seed ^ 0x9e3779b97f4a7c15, // decorrelate from the workload RNG
		ErrorRate: p.Chaos.ErrRate,
		StallRate: p.Chaos.StallRate,
		StallDur:  time.Duration(p.Chaos.StallMS) * time.Millisecond,
		DupRate:   p.Chaos.DupRate,
		SpikeRate: p.Chaos.SpikeRate,
		SpikeLen:  p.Chaos.SpikeLen,
		CutAfter:  p.Chaos.CutAfter,
	}
}

// spec returns the window spec.
func (p Plan) spec() window.Spec { return window.Spec{Size: p.Window, Slide: p.Slide} }

// agg materializes the aggregate factory.
func (p Plan) agg() window.Factory {
	switch p.Agg {
	case "count":
		return window.Count()
	case "avg":
		return window.Avg()
	case "max":
		return window.Max()
	case "median":
		return window.Median()
	case "distinct":
		return window.Distinct()
	default:
		return window.Sum()
	}
}

// core materializes the aggregation-core selection.
func (p Plan) core() window.CoreKind {
	k, err := window.ParseCoreKind(p.Core)
	if err != nil {
		panic(fmt.Sprintf("dst: %v", err))
	}
	return k
}

// flipCore returns the plan with the other aggregation core selected —
// the reference run for the cross-core equivalence contract.
func (p Plan) flipCore() Plan {
	if p.core() == window.CoreFiba {
		p.Core = "legacy"
	} else {
		p.Core = "fiba"
	}
	return p
}

// grouped reports whether the plan runs a GROUP BY query.
func (p Plan) grouped() bool { return p.NumKeys > 1 }

// qualityChecked reports whether the plan carries the θ quality
// contract: the adaptive handler on an ungrouped query (the
// configuration the controller's realized-error feedback is calibrated
// for; grouped AQ plans are swept for engine equivalence only) under a
// stationary delay distribution. Non-stationary models (step, burst)
// shift the delay regime faster than the feedback loop tracks it — the
// adaptation-lag transient the paper itself reports — so those plans
// exercise the engine without asserting the bound.
func (p Plan) qualityChecked() bool {
	if p.Handler.Kind != "aq" || p.grouped() {
		return false
	}
	switch p.Delay.Kind {
	case "step", "burst":
		return false
	}
	return true
}

// values materializes the payload generator. All kinds yield integers.
func (p Plan) values() gen.ValueGen {
	switch p.Values {
	case "constant":
		return gen.ConstantValue{V: 1}
	default:
		return intValues{Lo: 0, Hi: 100}
	}
}

// intValues yields uniform integer-valued payloads in [Lo, Hi) — exact in
// float64, so sums are associative and byte comparisons are meaningful.
type intValues struct{ Lo, Hi int }

// Value implements gen.ValueGen.
func (g intValues) Value(_ int, _ stream.Time, rng *stats.RNG) float64 {
	return float64(g.Lo + rng.Intn(g.Hi-g.Lo))
}

// genConfig materializes the workload generator.
func (p Plan) genConfig() gen.Config {
	return gen.Config{
		N:        p.N,
		Interval: p.Interval,
		Poisson:  p.Poisson,
		Values:   p.values(),
		Delays:   p.Delay.Model(),
		NumKeys:  p.NumKeys,
		Seed:     p.Seed,
	}
}

// String summarizes the plan for test logs.
func (p Plan) String() string {
	h := p.Handler.Kind
	if h == "aq" {
		h = fmt.Sprintf("aq(θ=%g)", p.Handler.Theta)
	} else if h == "kslack" {
		h = fmt.Sprintf("kslack(%d)", p.Handler.K)
	}
	return fmt.Sprintf("plan{seed=%d n=%d keys=%d delay=%s/%g hb=%d win=%d/%d agg=%s refine=%d core=%s h=%s batch=%d shards=%d fanout=%d net=%t chaos=%+v}",
		p.Seed, p.N, p.NumKeys, p.Delay.Kind, p.Delay.Mean, p.Heartbeat,
		p.Window, p.Slide, p.Agg, p.Refine, p.core(), h, p.Batch, p.Shards, p.Fanout, p.Net, p.Chaos)
}

// PlanForSeed derives one point of the sweep matrix from a seed. Every
// dimension — workload size and pacing, delay distribution, keys, window
// shape, aggregate, handler, transport batch, shard count, fault plan —
// is drawn from a dedicated RNG, so the matrix is dense, reproducible and
// grows no test-source table.
func PlanForSeed(seed uint64) Plan {
	rng := stats.NewRNG(seed*0x9e3779b97f4a7c15 + 0xd1b54a32d192ed03)
	p := Plan{
		Seed:     seed,
		N:        3000 + rng.Intn(5000),
		Interval: []stream.Time{5, 10, 20}[rng.Intn(3)],
		Poisson:  rng.Float64() < 0.5,
		Values:   []string{"uniform-int", "uniform-int", "constant"}[rng.Intn(3)],
	}

	p.Delay.Kind = []string{"zero", "constant", "exp", "normal", "pareto", "burst", "step"}[rng.Intn(7)]
	if p.Delay.Kind != "zero" {
		p.Delay.Mean = []float64{100, 500, 2000}[rng.Intn(3)]
	}

	if rng.Float64() < 0.5 {
		p.NumKeys = []int{8, 32, 64}[rng.Intn(3)]
	}
	if rng.Float64() < 0.5 {
		p.Heartbeat = []stream.Time{stream.Second, 5 * stream.Second}[rng.Intn(2)]
	}

	p.Window = []stream.Time{4 * stream.Second, 10 * stream.Second}[rng.Intn(2)]
	p.Slide = []stream.Time{500, stream.Second, 2 * stream.Second}[rng.Intn(3)]

	// Aggregates: the quality-checked (AQ, ungrouped) plans stay on the
	// additive aggregates the error model is built for; max joins the mix
	// for pure equivalence plans below.
	p.Agg = []string{"sum", "count", "avg"}[rng.Intn(3)]

	switch {
	case !  /* ungrouped */ (p.NumKeys > 1) && rng.Float64() < 0.65:
		p.Handler = HandlerPlan{Kind: "aq", Theta: []float64{0.01, 0.02, 0.05}[rng.Intn(3)]}
	case rng.Float64() < 0.2:
		p.Handler = HandlerPlan{Kind: "maxslack"}
	case rng.Float64() < 0.15 && p.NumKeys > 1:
		p.Handler = HandlerPlan{Kind: "aq", Theta: 0.05}
	default:
		p.Handler = HandlerPlan{Kind: "kslack", K: []stream.Time{100, 500, 2000}[rng.Intn(3)]}
	}
	if p.Handler.Kind != "aq" {
		if rng.Float64() < 0.5 {
			p.Agg = []string{"sum", "count", "avg", "max", "median", "distinct"}[rng.Intn(6)]
		}
		if rng.Float64() < 0.25 {
			p.Refine = 2 * p.Window
		}
	}

	p.Batch = []int{1, 7, 64, 256}[rng.Intn(4)]
	if p.NumKeys > 1 {
		p.Shards = 1 + rng.Intn(4)
	}

	switch rng.Intn(7) {
	case 0, 1: // no faults
	case 2:
		p.Chaos.DupRate = 0.01
	case 3:
		p.Chaos.SpikeRate, p.Chaos.SpikeLen = 0.002, []int{16, 32}[rng.Intn(2)]
	case 4:
		p.Chaos.DupRate = 0.005
		p.Chaos.SpikeRate, p.Chaos.SpikeLen = 0.001, 32
		p.Chaos.ErrRate = 0.01
	case 5:
		p.Chaos.ErrRate = 0.02
		p.Chaos.StallRate, p.Chaos.StallMS = 0.005, 2
	case 6:
		p.Chaos.CutAfter = int64(p.N) * 3 / 4
	}

	// Core is drawn LAST so its addition did not perturb the plans (and
	// committed transcripts) earlier seeds already pinned.
	if rng.Float64() < 0.5 {
		p.Core = "fiba"
	}

	// Fanout is drawn after Core for the same reason: appending a draw
	// leaves every earlier dimension — and the transcripts they pin —
	// untouched. Half the seeds exercise the shared-source ring.
	switch rng.Intn(4) {
	case 2:
		p.Fanout = 2
	case 3:
		p.Fanout = 8
	}

	// Net is drawn LAST (after Fanout) so committed transcripts from
	// every earlier sweep replay unchanged; roughly a third of the seeds
	// push their transcript through the wire protocol.
	p.Net = rng.Float64() < 0.35
	return p
}
