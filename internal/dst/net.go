package dst

// Plan.Net: the wire-transport contract. A plan that draws Net replays
// its committed transcript through the netstream line protocol over an
// in-memory net.Pipe — encode on one end, Decoder on the other — and
// demands (a) the decoded item sequence digests identically to the
// transcript and (b) the plan's query over the decoded items reproduces
// the synchronous run byte for byte. Encoding is exact (%g float64
// round-trips, see internal/netstream), so the wire adds framing, never
// semantics — the same shape of claim the Fanout dimension makes for
// the in-process ring.

import (
	"fmt"
	"net"

	"repro/internal/netstream"
	"repro/internal/stream"
)

// replayNetstream pushes items through an encoder → net.Pipe → Decoder
// round trip and returns the decoded sequence.
func replayNetstream(items []stream.Item) ([]stream.Item, error) {
	client, server := net.Pipe()
	writeErr := make(chan error, 1)
	go func() {
		defer client.Close()
		buf := netstream.AppendHello(nil, "dst", "")
		for _, it := range items {
			buf = netstream.AppendItem(buf, it)
			if len(buf) >= 32<<10 {
				if _, err := client.Write(buf); err != nil {
					writeErr <- err
					return
				}
				buf = buf[:0]
			}
		}
		if len(buf) > 0 {
			if _, err := client.Write(buf); err != nil {
				writeErr <- err
				return
			}
		}
		writeErr <- nil
	}()

	d := netstream.NewDecoder(server)
	if err := d.Hello(); err != nil {
		server.Close()
		return nil, fmt.Errorf("dst: netstream hello: %w", err)
	}
	decoded, err := d.ReadAll()
	server.Close()
	if err != nil {
		return nil, fmt.Errorf("dst: netstream decode: %w", err)
	}
	if werr := <-writeErr; werr != nil {
		return nil, fmt.Errorf("dst: netstream write: %w", werr)
	}
	return decoded, nil
}
