package dst

// Plan.Net: the wire-transport contract. A plan that draws Net replays
// its committed transcript through the netstream line protocol over an
// in-memory net.Pipe — encode on one end, Decoder on the other — and
// demands (a) the decoded item sequence digests identically to the
// transcript and (b) the plan's query over the decoded items reproduces
// the synchronous run byte for byte. Encoding is exact (%g float64
// round-trips, see internal/netstream), so the wire adds framing, never
// semantics — the same shape of claim the Fanout dimension makes for
// the in-process ring.

import (
	"fmt"
	"net"

	"repro/internal/netstream"
	"repro/internal/stream"
)

// replayNetstream pushes items through an encoder → net.Pipe → Decoder
// round trip and returns the decoded sequence.
func replayNetstream(items []stream.Item) ([]stream.Item, error) {
	client, server := net.Pipe()
	writeErr := make(chan error, 1)
	go func() {
		defer client.Close()
		buf := netstream.AppendHello(nil, "dst", "")
		for _, it := range items {
			buf = netstream.AppendItem(buf, it)
			if len(buf) >= 32<<10 {
				if _, err := client.Write(buf); err != nil {
					writeErr <- err
					return
				}
				buf = buf[:0]
			}
		}
		if len(buf) > 0 {
			if _, err := client.Write(buf); err != nil {
				writeErr <- err
				return
			}
		}
		writeErr <- nil
	}()

	d := netstream.NewDecoder(server)
	if err := d.Hello(); err != nil {
		server.Close()
		return nil, fmt.Errorf("dst: netstream hello: %w", err)
	}
	decoded, err := d.ReadAll()
	server.Close()
	if err != nil {
		return nil, fmt.Errorf("dst: netstream decode: %w", err)
	}
	if werr := <-writeErr; werr != nil {
		return nil, fmt.Errorf("dst: netstream write: %w", werr)
	}
	return decoded, nil
}

// provItem is one decoded item together with the wire-provenance mark
// in effect when it was read.
type provItem struct {
	item stream.Item
	prov stream.BatchProv
}

// replayNetstreamReconnect replays the transcript as provenance-marked
// batches across a connection cut: every batch is prefixed by a B mark
// (deterministic id and send time), the first connection ends at a
// batch boundary, and the redial resends the boundary batch with its
// byte-identical mark — the netstream.Client contract, where the
// duplicated id is the server's replay signal. The consumer
// deduplicates by batch id and the result must digest identically to
// the transcript; every decoded item must sit under a valid mark, and
// a mark must never change across the replay.
func replayNetstreamReconnect(items []stream.Item, batchSize int) ([]stream.Item, error) {
	if batchSize <= 0 {
		batchSize = 64
	}
	type wireBatch struct {
		prov  stream.BatchProv
		items []stream.Item
	}
	var batches []wireBatch
	for i := 0; i < len(items); i += batchSize {
		j := i + batchSize
		if j > len(items) {
			j = len(items)
		}
		id := uint64(len(batches) + 1)
		batches = append(batches, wireBatch{
			prov:  stream.BatchProv{BatchID: id, SendMS: int64(1_000 + 10*id)},
			items: items[i:j],
		})
	}
	if len(batches) == 0 {
		return nil, nil
	}
	cut := len(batches) / 2 // boundary batch: delivered on both connections

	// sendRange frames batches[from:to] over one pipe connection and
	// returns each decoded item with its in-effect mark.
	sendRange := func(from, to int) ([]provItem, error) {
		client, server := net.Pipe()
		writeErr := make(chan error, 1)
		go func() {
			defer client.Close()
			buf := netstream.AppendHello(nil, "dst", "")
			for _, b := range batches[from:to] {
				buf = netstream.AppendBatchMark(buf, b.prov)
				for _, it := range b.items {
					buf = netstream.AppendItem(buf, it)
				}
				if len(buf) >= 32<<10 {
					if _, err := client.Write(buf); err != nil {
						writeErr <- err
						return
					}
					buf = buf[:0]
				}
			}
			if len(buf) > 0 {
				if _, err := client.Write(buf); err != nil {
					writeErr <- err
					return
				}
			}
			writeErr <- nil
		}()
		d := netstream.NewDecoder(server)
		if err := d.Hello(); err != nil {
			server.Close()
			return nil, fmt.Errorf("dst: netstream reconnect hello: %w", err)
		}
		var got []provItem
		for {
			it, ok, err := d.Next()
			if err != nil {
				server.Close()
				return nil, fmt.Errorf("dst: netstream reconnect decode: %w", err)
			}
			if !ok {
				break
			}
			got = append(got, provItem{item: it, prov: d.Prov()})
		}
		server.Close()
		if werr := <-writeErr; werr != nil {
			return nil, fmt.Errorf("dst: netstream reconnect write: %w", werr)
		}
		return got, nil
	}

	first, err := sendRange(0, cut+1) // connection dies after the boundary batch
	if err != nil {
		return nil, err
	}
	second, err := sendRange(cut, len(batches)) // redial replays the boundary mark
	if err != nil {
		return nil, err
	}

	// Consumer-side dedup: a batch id at or below the highest id a
	// previous connection completed is a replay and is dropped whole.
	marks := make(map[uint64]stream.BatchProv, len(batches))
	var out []stream.Item
	doneThrough := uint64(0)
	for _, conn := range [][]provItem{first, second} {
		maxID := doneThrough
		for _, pi := range conn {
			id := pi.prov.BatchID
			if id == 0 {
				return nil, fmt.Errorf("dst: item decoded without a provenance mark")
			}
			if prev, seen := marks[id]; seen {
				if prev != pi.prov {
					return nil, fmt.Errorf("dst: provenance mark for batch %d changed across replay: %+v vs %+v",
						id, prev, pi.prov)
				}
			} else {
				marks[id] = pi.prov
			}
			if id > maxID {
				maxID = id
			}
			if id <= doneThrough {
				continue // replayed batch: the duplicated id is the signal
			}
			out = append(out, pi.item)
		}
		doneThrough = maxID
	}
	if len(marks) != len(batches) {
		return nil, fmt.Errorf("dst: observed %d distinct marks, want %d", len(marks), len(batches))
	}
	return out, nil
}
