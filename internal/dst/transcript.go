package dst

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"math"
	"os"

	"repro/internal/cq"
	"repro/internal/durable"
	"repro/internal/stream"
	"repro/internal/window"
)

// hashU64 writes one little-endian word into the digest.
func hashU64(h hash.Hash, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}

func hashF64(h hash.Hash, v float64) { hashU64(h, math.Float64bits(v)) }

// DigestItems fingerprints an event transcript: every field of every item
// in delivery order. Two runs of the same seed must produce the same
// digest — this is the "identical event transcript" half of the
// determinism contract.
func DigestItems(items []stream.Item) string {
	h := sha256.New()
	for _, it := range items {
		if it.Heartbeat {
			hashU64(h, 1)
			hashU64(h, uint64(it.Watermark))
			continue
		}
		hashU64(h, 0)
		t := it.Tuple
		hashU64(h, uint64(t.TS))
		hashU64(h, uint64(t.Arrival))
		hashU64(h, t.Seq)
		hashU64(h, t.Key)
		hashU64(h, uint64(t.Src))
		hashF64(h, t.Value)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// DigestOutput fingerprints a report's query output: results (plain and
// keyed, with float bits, so NaN and -0 are distinguished), the flush
// boundary, and the handler/operator counters. The "identical engine
// output" half of the determinism contract.
func DigestOutput(rep *cq.AggReport) string {
	h := sha256.New()
	hashResult := func(r window.Result) {
		hashU64(h, uint64(r.Idx))
		hashU64(h, uint64(r.Start))
		hashU64(h, uint64(r.End))
		hashF64(h, r.Value)
		hashU64(h, uint64(r.Count))
		hashU64(h, uint64(r.EmitArrival))
		if r.Refinement {
			hashU64(h, 1)
		} else {
			hashU64(h, 0)
		}
	}
	hashU64(h, uint64(len(rep.Results)))
	for _, r := range rep.Results {
		hashResult(r)
	}
	hashU64(h, uint64(len(rep.Keyed)))
	for _, kr := range rep.Keyed {
		hashU64(h, kr.Key)
		hashResult(kr.Result)
	}
	hashU64(h, uint64(rep.PreFlush))
	st := rep.Handler
	hashU64(h, uint64(st.Inserted))
	hashU64(h, uint64(st.Released))
	hashU64(h, uint64(st.Stragglers))
	hashU64(h, uint64(st.MaxHeld))
	hashU64(h, uint64(st.MaxK))
	hashU64(h, uint64(st.Shed))
	return hex.EncodeToString(h.Sum(nil))
}

// Transcript is the committed form of a failing (or regression-guarded)
// simulation: the shrunk plan plus the digests that pin down exactly what
// the run consumed and produced, and the failure it reproduced when it
// was recorded. Small enough to commit to testdata/ and replay forever.
type Transcript struct {
	// Note says why this transcript exists — what bug it caught.
	Note string `json:"note,omitempty"`
	Plan Plan   `json:"plan"`
	// Items/ItemsDigest pin the event transcript the plan generates.
	Items       int    `json:"items"`
	ItemsDigest string `json:"items_digest"`
	// OutputDigest pins the synchronous run's output. Replay verifies
	// both digests still match — the workload generator and the engine
	// contract are covered by one file.
	OutputDigest string `json:"output_digest"`
	// Failure is the oracle failure observed when the transcript was
	// recorded (empty for pure determinism-pinning transcripts).
	Failure string `json:"failure,omitempty"`
}

// NewTranscript captures an outcome as a committable transcript.
func NewTranscript(o *Outcome, note string) Transcript {
	t := Transcript{
		Note:         note,
		Plan:         o.Plan,
		Items:        o.Items,
		ItemsDigest:  o.ItemsDigest,
		OutputDigest: o.OutputDigest,
	}
	if len(o.Failures) > 0 {
		t.Failure = o.Failures[0]
	}
	return t
}

// Write saves the transcript as indented JSON, atomically: a transcript is
// a committed regression artifact, and a crash mid-write must never leave
// a torn file that replays as a parse error instead of the pinned bug.
func (t Transcript) Write(path string) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return durable.WriteFileAtomic(path, append(data, '\n'), 0o644)
}

// ReadTranscript loads a committed transcript.
func ReadTranscript(path string) (Transcript, error) {
	var t Transcript
	data, err := os.ReadFile(path)
	if err != nil {
		return t, err
	}
	if err := json.Unmarshal(data, &t); err != nil {
		return t, fmt.Errorf("dst: transcript %s: %w", path, err)
	}
	return t, nil
}

// Replay re-executes the transcript's plan and verifies the run still
// matches the pinned digests and that no oracle contract fails. It is
// the regression check for bugs the harness has caught before.
func (t Transcript) Replay() error {
	o, err := Execute(t.Plan)
	if err != nil {
		return err
	}
	if o.ItemsDigest != t.ItemsDigest || o.Items != t.Items {
		return fmt.Errorf("dst: transcript drift: generated %d items digest %.12s, pinned %d items digest %.12s (workload generation changed)",
			o.Items, o.ItemsDigest, t.Items, t.ItemsDigest)
	}
	if o.OutputDigest != t.OutputDigest {
		return fmt.Errorf("dst: output drift: digest %.12s, pinned %.12s (engine output changed for a pinned workload)",
			o.OutputDigest, t.OutputDigest)
	}
	if len(o.Failures) > 0 {
		return fmt.Errorf("dst: replay failed oracle checks: %v", o.Failures)
	}
	return nil
}
