package dst

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/obs"
	"repro/internal/obs/tracez"
	"repro/internal/oracle"
	"repro/internal/resilience"
	"repro/internal/stream"
)

// infiniteK is a slack no finite workload outlasts: the handler holds
// every tuple until Flush, which releases in exact (TS, Seq) order.
const infiniteK stream.Time = 1 << 40

// Outcome is the result of executing a Plan through the harness and the
// differential oracle. Failures lists every contract that did not hold;
// an empty list means the plan passed.
type Outcome struct {
	Plan         Plan
	Items        int    // transcript length (data + heartbeats)
	ItemsDigest  string // sha256 of the event transcript
	OutputDigest string // sha256 of the synchronous run's output
	TraceDigest  string // tracez.Digest of the synchronous run's event trace
	Sync         *cq.AggReport
	Conc         *cq.AggReport
	Failures     []string
}

// fail records a failed check.
func (o *Outcome) fail(format string, args ...any) {
	o.Failures = append(o.Failures, fmt.Sprintf(format, args...))
}

// handler materializes a fresh disorder handler for one run. Handlers are
// stateful, so every execution path needs its own.
func (p Plan) handler() buffer.Handler {
	switch p.Handler.Kind {
	case "maxslack":
		return buffer.NewMaxSlack()
	case "aq":
		return p.aqHandler(p.Handler.Theta)
	default:
		return buffer.NewKSlack(p.Handler.K)
	}
}

// aqHandler builds the adaptive handler at the given quality bound.
func (p Plan) aqHandler(theta float64) buffer.Handler {
	return core.NewAQKSlack(core.Config{Theta: theta, Spec: p.spec(), Agg: p.agg()})
}

// build assembles a query over src with the given handler and the plan's
// shape. Every variant goes through here so sync, concurrent and
// metamorphic runs execute the same query modulo the dimension under
// test.
func (p Plan) build(src stream.ErrSource, h buffer.Handler) *cq.AggQuery {
	q := cq.NewFallible(src).Handle(h).Window(p.spec(), p.agg()).AggCore(p.core()).KeepInput()
	if p.grouped() {
		q.GroupBy()
	}
	if p.Refine > 0 {
		q.Refine(p.Refine)
	}
	if p.Batch > 0 {
		q.Batch(p.Batch)
	}
	if p.Shards > 0 {
		q.Shards(p.Shards)
	}
	return q
}

// faultChain builds the generator → heartbeats → chaos source stack on a
// fresh scheduler. Both the transcript drain and the concurrent run use
// it, so they see identical fault schedules (the chaos RNG is seeded, and
// injected errors never consume an item).
func (p Plan) faultChain(sched *Scheduler) *resilience.FaultSource {
	var src stream.Source = p.genConfig().Source()
	if p.Heartbeat > 0 {
		src = stream.NewWithHeartbeats(src, p.Heartbeat)
	}
	return resilience.NewFaultSource(stream.AsErrSource(src), p.chaos()).WithClock(sched)
}

// transcript materializes the exact item sequence the pipeline will
// consume: the chaos source drained with inline retry on injected errors
// (errors leave the position untouched, so the delivered sequence equals
// what RunConcurrent's retrier sees for the same seed).
func (p Plan) transcript() []stream.Item {
	fault := p.faultChain(NewScheduler())
	var items []stream.Item
	for {
		it, ok, err := fault.NextErr()
		if err != nil {
			continue // injected transient fault: same position, retry
		}
		if !ok {
			return items
		}
		items = append(items, it)
	}
}

// runSync executes the plan's query synchronously over a fixed
// transcript, optionally mirroring it into a flight recorder (tr may be
// nil): the trace-determinism contract hashes the recorded events.
func (p Plan) runSync(items []stream.Item, h buffer.Handler, tr *tracez.Tracer) (*cq.AggReport, error) {
	q := p.build(stream.AsErrSource(stream.NewSliceSource(items)), h)
	if tr != nil {
		q.Trace(tr)
	}
	return q.Run()
}

// runConcurrent executes the plan's query through the goroutine pipeline
// against a fresh chaos chain under virtual time.
func (p Plan) runConcurrent() (*cq.AggReport, error) {
	sched := NewScheduler()
	src := &pacedSource{src: p.faultChain(sched), sched: sched}
	q := p.build(src, p.handler()).Clock(sched)
	if p.Chaos.ErrRate > 0 {
		// Injected errors must never terminate the run: a generous attempt
		// budget, deterministic jitter, no breaker (a breaker's fail-fast
		// window would drop items and break transcript equality).
		q.Retry(resilience.Retry{MaxAttempts: 1000, Seed: p.Seed ^ 0x5bf03635, Clock: sched})
	}
	return q.RunConcurrent(context.Background(), nil)
}

// runShared executes Fanout replica queries of the plan's shape over one
// shared broadcast ring (see internal/fanout), fed by a fresh chaos chain
// under virtual time. The producer side carries the resilience stack —
// pacing, then retry on injected errors — so every subscriber sees the
// identical delivered sequence the standalone runs consumed.
func (p Plan) runShared() ([]*cq.AggReport, error) {
	sched := NewScheduler()
	var src stream.ErrSource = &pacedSource{src: p.faultChain(sched), sched: sched}
	if p.Chaos.ErrRate > 0 {
		// Same attempt budget and jitter seed as runConcurrent's per-query
		// retrier, hoisted to the ring's single producer.
		src = resilience.NewRetryingSource(context.Background(), src,
			resilience.Retry{MaxAttempts: 1000, Seed: p.Seed ^ 0x5bf03635, Clock: sched})
	}
	queries := make([]*cq.AggQuery, p.Fanout)
	for i := range queries {
		queries[i] = p.build(nil, p.handler()).Clock(sched)
	}
	return cq.RunShared(context.Background(), src, cq.SharedOpts{Batch: p.Batch}, queries...)
}

// Execute runs one plan through every execution path and the differential
// oracle. The returned error reports harness failures (a query that fails
// validation); contract violations land in Outcome.Failures.
func Execute(p Plan) (*Outcome, error) {
	o := &Outcome{Plan: p}

	items := p.transcript()
	o.Items = len(items)
	o.ItemsDigest = DigestItems(items)

	rec := tracez.NewRecorder(1 << 15)
	sync, err := p.runSync(items, p.handler(), tracez.New(rec, "dst"))
	if err != nil {
		return nil, fmt.Errorf("dst: sync run: %w", err)
	}
	o.Sync = sync
	o.OutputDigest = DigestOutput(sync)
	o.TraceDigest = tracez.Digest(rec.Events())

	conc, err := p.runConcurrent()
	if err != nil {
		return nil, fmt.Errorf("dst: concurrent run: %w", err)
	}
	o.Conc = conc

	// Contract 1: the concurrent pipeline reproduces the synchronous
	// executor byte for byte.
	if err := oracle.Equivalence(sync, conc); err != nil {
		o.fail("equivalence: %v", err)
	}

	// Contract 1b: the other aggregation core emits the identical output on
	// the identical transcript. Runs on every seed regardless of which core
	// the plan drew, so the whole sweep matrix — every batch size, shard
	// count, policy and chaos mix — doubles as the cross-core equivalence
	// proof (DST payloads are integers, so tree-regrouped Kahan sums are
	// exact; see docs/ALGORITHMS.md).
	flip := p.flipCore()
	altSync, err := flip.runSync(items, flip.handler(), nil)
	if err != nil {
		return nil, fmt.Errorf("dst: flipped-core run: %w", err)
	}
	if err := oracle.SameOutput(sync, altSync); err != nil {
		o.fail("core-equivalence (%s vs %s): %v", p.core(), flip.core(), err)
	}

	// Contract 1c: every replica of the query, subscribed to one shared
	// broadcast ring draining the same chaos chain, reproduces the
	// synchronous run byte for byte — fan-out adds transport, never
	// semantics. Block subscriptions make this exact (no sheds).
	if p.Fanout > 1 {
		reps, err := p.runShared()
		if err != nil {
			return nil, fmt.Errorf("dst: shared fan-out run: %w", err)
		}
		for i, rep := range reps {
			if err := oracle.Equivalence(sync, rep); err != nil {
				o.fail("fanout[%d of %d]: %v", i, p.Fanout, err)
			}
		}
	}

	// Contract 1d: the wire protocol is transparent — the transcript
	// replayed through netstream framing over a net.Pipe decodes to the
	// byte-identical item sequence, and the plan's query over the decoded
	// stream reproduces the synchronous run exactly.
	if p.Net {
		decoded, err := replayNetstream(items)
		if err != nil {
			return nil, err
		}
		if got := DigestItems(decoded); got != o.ItemsDigest {
			o.fail("net: decoded transcript digest %s != %s (%d vs %d items)",
				got, o.ItemsDigest, len(decoded), len(items))
		} else {
			netSync, err := p.runSync(decoded, p.handler(), nil)
			if err != nil {
				return nil, fmt.Errorf("dst: net replay run: %w", err)
			}
			if err := oracle.SameOutput(sync, netSync); err != nil {
				o.fail("net: %v", err)
			}
		}
		// …and wire provenance survives a reconnect replay: the same
		// transcript framed as B-marked batches across a connection cut
		// — the redial resending the boundary batch with its identical
		// mark — deduplicates by batch id back to the byte-identical
		// sequence (mark mutations and unmarked items fail inside the
		// replay helper).
		redecoded, err := replayNetstreamReconnect(items, 64)
		if err != nil {
			o.fail("net-reconnect: %v", err)
		} else if got := DigestItems(redecoded); got != o.ItemsDigest {
			o.fail("net-reconnect: deduplicated transcript digest %s != %s (%d vs %d items)",
				got, o.ItemsDigest, len(redecoded), len(items))
		}
	}

	// Contract 1e: the observability plane is passive. The identical
	// synchronous run with the handler instrumented into a registry and
	// an obs.History hammering Sample on that registry from another
	// goroutine must reproduce both the output digest and the trace
	// digest byte for byte — sampling reads instruments, it never
	// perturbs execution.
	obsRec := tracez.NewRecorder(1 << 15)
	reg := obs.NewRegistry()
	obsHandler := buffer.Instrument(p.handler(), reg, obs.L("query", "dst"))
	hist := obs.NewHistory(reg, obs.HistoryOptions{Step: time.Millisecond, Retention: time.Second})
	stopSampling := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for {
			select {
			case <-stopSampling:
				return
			default:
				hist.Sample()
			}
		}
	}()
	obsSync, err := p.runSync(items, obsHandler, tracez.New(obsRec, "dst"))
	close(stopSampling)
	<-samplerDone
	if err != nil {
		return nil, fmt.Errorf("dst: instrumented sync run: %w", err)
	}
	if got := DigestOutput(obsSync); got != o.OutputDigest {
		o.fail("obs-passivity: output digest %s != %s under history sampling", got, o.OutputDigest)
	}
	if got := tracez.Digest(obsRec.Events()); got != o.TraceDigest {
		o.fail("obs-passivity: trace digest %s != %s under history sampling", got, o.TraceDigest)
	}

	// Contract 2: realized quality within θ (adaptive ungrouped plans; the
	// controller's shadow computation is not per-key, so grouped AQ plans
	// are swept for equivalence only).
	if p.qualityChecked() {
		if err := oracle.QualityContract(sync, p.spec(), p.agg(), p.grouped(),
			oracle.ContractOpts{Theta: p.Handler.Theta}); err != nil {
			o.fail("quality: %v", err)
		}
	}

	// Metamorphic relation 1: infinite slack ⇒ exact results.
	infK, err := p.runSync(items, buffer.NewKSlack(infiniteK), nil)
	if err != nil {
		return nil, fmt.Errorf("dst: infinite-K run: %w", err)
	}
	if err := oracle.ExactUnderInfiniteK(infK, p.spec(), p.agg(), p.grouped()); err != nil {
		o.fail("infinite-K: %v", err)
	}

	// Metamorphic relation 2: permuting tuples that share (TS, Arrival)
	// must not change the output. The workload is quantized onto a coarse
	// grain first so such ties actually exist, and runs on a fixed-slack
	// handler — the adaptive handler's quantile sketch is insertion-order
	// sensitive by design, so its slack choice (not its correctness) may
	// differ under permutation.
	if err := p.checkPermutation(o, items); err != nil {
		return nil, err
	}

	// Metamorphic relation 3: doubling θ must not increase emission
	// latency — a looser quality bound licenses less slack, never more.
	if p.qualityChecked() {
		relaxed, err := p.runSync(items, p.aqHandler(2*p.Handler.Theta), nil)
		if err != nil {
			return nil, fmt.Errorf("dst: relaxed-θ run: %w", err)
		}
		const warmup = 20
		tol := float64(p.Slide) // the controller adapts K in window-slide-sized steps
		if err := oracle.LatencyNotWorse(sync.Latency(warmup), relaxed.Latency(warmup), tol); err != nil {
			o.fail("θ-monotonicity: %v", err)
		}
	}

	return o, nil
}

// checkPermutation runs metamorphic relation 2 on a tie-rich projection
// of the transcript.
func (p Plan) checkPermutation(o *Outcome, items []stream.Item) error {
	// The relation demands bit-identical output, so it needs an exactly
	// commutative accumulator: with integer payloads sum/count/min/max
	// qualify, but avg (Welford's running mean, numerically stable by
	// design) is float-order-sensitive — remap it to sum. RefineLate is
	// excluded too: refinements are progressive per-late-tuple
	// corrections, so the *intermediate* refined values (and, for grouped
	// queries, the per-key refinement emission order) legitimately track
	// arrival order within a slot.
	if p.Agg == "avg" {
		p.Agg = "sum"
	}
	p.Refine = 0
	tieItems := quantize(items, 16*p.Interval)
	h := p.Handler.K
	if h <= 0 {
		h = 500
	}
	base, err := p.runSync(tieItems, buffer.NewKSlack(h), nil)
	if err != nil {
		return fmt.Errorf("dst: permutation base run: %w", err)
	}
	perm, err := p.runSync(oracle.PermuteEqualArrival(tieItems, p.Seed^0xa5a5a5a5), buffer.NewKSlack(h), nil)
	if err != nil {
		return fmt.Errorf("dst: permutation run: %w", err)
	}
	if err := oracle.SameOutput(base, perm); err != nil {
		o.fail("permutation: %v", err)
	}
	return nil
}

// quantize projects the transcript's data tuples onto a coarse time grain
// — timestamps and arrivals snap down to multiples of grain, arrival
// clamped to never precede the event — and re-sorts by (Arrival, TS, Seq)
// so tuples sharing a (TS, Arrival) slot sit adjacent. The result is an
// arrival-ordered stream dense in exact ties, the input the permutation
// relation needs. Heartbeats are dropped: quantization moves arrivals
// backwards, which could strand a heartbeat's watermark ahead of later
// tuples.
func quantize(items []stream.Item, grain stream.Time) []stream.Item {
	if grain <= 0 {
		grain = 1
	}
	var out []stream.Item
	for _, it := range items {
		if it.Heartbeat {
			continue
		}
		t := it.Tuple
		t.TS -= t.TS % grain
		t.Arrival -= t.Arrival % grain
		if t.Arrival < t.TS {
			t.Arrival = t.TS
		}
		out = append(out, stream.DataItem(t))
	}
	// Key participates in the sort so tuples sharing a whole
	// (Arrival, TS, Key) slot — the unit PermuteEqualArrival shuffles —
	// sit adjacent.
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i].Tuple, out[j].Tuple
		if a.Arrival != b.Arrival {
			return a.Arrival < b.Arrival
		}
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Seq < b.Seq
	})
	return out
}
