package dst

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"

	"repro/internal/cq"
	"repro/internal/durable"
	"repro/internal/oracle"
	"repro/internal/resilience"
	"repro/internal/stats"
	"repro/internal/stream"
)

// CrashPlan is one fully-specified crash-recovery simulation: a base
// workload/query plan (restricted to the durable executor's domain:
// ungrouped, no refinement, no shards), a crash point expressed as a
// fraction of the transcript, optional tail damage applied to the journal
// between death and restart, and the durability cadence. Like Plan it is a
// pure value: executing it twice in fresh directories yields identical
// recovered outputs.
type CrashPlan struct {
	Plan Plan `json:"plan"`

	// CutPermille positions the crash: the pipeline dies after consuming
	// ⌊len(transcript)·CutPermille/1000⌋ items.
	CutPermille int `json:"cut_permille"`

	// Corrupt selects post-crash tail damage on the newest journal
	// segment: "" (none), "torn" (the tail bytes of the last append never
	// reached disk) or "bitrot" (a flipped bit under an interrupted
	// write). The journal must absorb either by truncate-and-continue.
	Corrupt string `json:"corrupt,omitempty"`

	// Concurrent runs both the crashed and the recovered execution through
	// the goroutine pipeline instead of the synchronous executor.
	Concurrent bool `json:"concurrent,omitempty"`

	CommitEvery   int   `json:"commit_every"`
	SnapshotEvery int64 `json:"snapshot_every"`
	SegmentBytes  int64 `json:"segment_bytes,omitempty"`
}

// String summarizes the crash plan for test logs.
func (cp CrashPlan) String() string {
	mode := "sync"
	if cp.Concurrent {
		mode = "conc"
	}
	return fmt.Sprintf("crash{cut=%d‰ corrupt=%q mode=%s commit=%d snap=%d %s}",
		cp.CutPermille, cp.Corrupt, mode, cp.CommitEvery, cp.SnapshotEvery, cp.Plan)
}

// CrashPlanForSeed derives one point of the crash sweep from a seed. It
// reuses PlanForSeed's workload matrix, projected onto the durable
// executor's domain, then draws the crash-specific dimensions from a
// decorrelated RNG.
func CrashPlanForSeed(seed uint64) CrashPlan {
	p := PlanForSeed(seed)
	p.NumKeys = 0 // durability covers ungrouped queries only
	p.Shards = 0
	p.Refine = 0

	rng := stats.NewRNG(seed*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb)
	cp := CrashPlan{
		Plan:          p,
		CutPermille:   250 + rng.Intn(651), // crash in [25%, 90%] of the stream
		CommitEvery:   []int{1, 16, 64}[rng.Intn(3)],
		SnapshotEvery: []int64{0, 256, 1000}[rng.Intn(3)],
		SegmentBytes:  []int64{4 << 10, 64 << 10}[rng.Intn(2)],
	}
	cp.Concurrent = rng.Float64() < 0.35
	if cp.Concurrent || p.qualityChecked() {
		// Both phases of a concurrent crash commit per item so the durable
		// prefix is pinned to the crash point (group-commit timing inside
		// the pipeline is schedule-dependent); quality-checked plans do the
		// same so the θ contract sees zero commit-batching loss.
		cp.CommitEvery = 1
	}
	switch rng.Intn(3) {
	case 1:
		cp.Corrupt = "torn"
	case 2:
		cp.Corrupt = "bitrot"
	}
	return cp
}

// CrashOutcome is the result of one crash-recovery execution.
type CrashOutcome struct {
	Plan    CrashPlan
	Items   int // transcript length
	Cut     int // items consumed before the crash
	Durable int // items the journal + snapshot preserved across it
	Lost    int // data tuples in the gap (committed-batch and torn-tail loss)

	Recovered    *cq.AggReport
	LossRef      *cq.AggReport
	OutputDigest string // sha256 of the recovered run's output

	Failures []string
}

// fail records a failed check.
func (o *CrashOutcome) fail(format string, args ...any) {
	o.Failures = append(o.Failures, fmt.Sprintf(format, args...))
}

// errCrashPoint is the injected process death: the source fails at the cut
// and the journal is abandoned with its uncommitted tail, exactly the
// on-disk state a SIGKILL leaves.
var errCrashPoint = errors.New("dst: injected crash point")

// crashAfter delivers items[:n] then dies.
type crashAfter struct {
	items []stream.Item
	n     int
	pos   int
}

func (s *crashAfter) NextErr() (stream.Item, bool, error) {
	if s.pos >= s.n {
		return stream.Item{}, false, errCrashPoint
	}
	it := s.items[s.pos]
	s.pos++
	return it, true, nil
}

// run executes the plan's query over src with durability attached, through
// the executor the crash plan selects.
func (cp CrashPlan) run(src stream.ErrSource, log *durable.QueryLog) (*cq.AggReport, error) {
	q := cp.Plan.build(src, cp.Plan.handler()).Durable(cq.Durable{Log: log})
	if cp.Concurrent {
		return q.RunConcurrent(context.Background(), nil)
	}
	return q.Run()
}

// damageTail applies the plan's post-crash corruption to the newest journal
// segment. Deterministic: span and bit position derive from the plan seed.
func (cp CrashPlan) damageTail(dir string) error {
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		return err
	}
	sort.Strings(segs) // zero-padded names: lexical order is record order
	last := segs[len(segs)-1]
	rng := stats.NewRNG(cp.Plan.Seed ^ 0x2545f4914f6cdd1d)
	switch cp.Corrupt {
	case "torn":
		return resilience.TruncateTail(last, 1+int64(rng.Intn(96)))
	case "bitrot":
		return resilience.CorruptTail(last, 1+int64(rng.Intn(256)), cp.Plan.Seed^0x9e3779b9)
	}
	return nil
}

// countTuples counts data tuples (heartbeats excluded) in items.
func countTuples(items []stream.Item) int64 {
	var n int64
	for _, it := range items {
		if !it.Heartbeat {
			n++
		}
	}
	return n
}

// ExecuteCrash runs one crash plan end to end in dir (which must be empty):
// phase 1 runs the durable query until the injected crash and abandons the
// log mid-flight; the journal tail is then optionally damaged; phase 2
// reopens the directory, recovers, and consumes the rest of the transcript.
// The differential oracle checks the recovered run against a loss
// reference — a fresh uninterrupted run over exactly the items that
// survived (durable prefix ++ post-crash input) — plus, for quality-checked
// plans, the paper's θ contract with the crash loss folded in as shed.
func ExecuteCrash(cp CrashPlan, dir string) (*CrashOutcome, error) {
	p := cp.Plan
	o := &CrashOutcome{Plan: cp}

	items := p.transcript()
	o.Items = len(items)
	o.Cut = len(items) * cp.CutPermille / 1000

	opts := durable.Options{
		Dir:           dir,
		CommitEvery:   cp.CommitEvery,
		SnapshotEvery: cp.SnapshotEvery,
		SegmentBytes:  cp.SegmentBytes,
	}

	// Phase 1: run to the crash point, then die without flushing.
	log, err := durable.Open(opts)
	if err != nil {
		return nil, fmt.Errorf("dst: open durable dir: %w", err)
	}
	if _, err := cp.run(&crashAfter{items: items, n: o.Cut}, log); !errors.Is(err, errCrashPoint) {
		return nil, fmt.Errorf("dst: crashed run: got err %v, want injected crash", err)
	}
	log.Abandon()

	if cp.Corrupt != "" {
		if err := cp.damageTail(dir); err != nil {
			return nil, fmt.Errorf("dst: damage tail: %w", err)
		}
	}

	// Phase 2: restart. Open performs recovery; peek at it (before the
	// executor consumes it) to learn the durable prefix length D — the
	// journal is dense and order-preserving, so the preserved items are
	// exactly items[:D].
	log2, err := durable.Open(opts)
	if err != nil {
		return nil, fmt.Errorf("dst: reopen after crash: %w", err)
	}
	durableItems := int(log2.Recovery().Items)
	o.Durable = durableItems
	if durableItems > o.Cut {
		log2.Close()
		return nil, fmt.Errorf("dst: journal claims %d durable items but only %d were consumed", durableItems, o.Cut)
	}
	o.Lost = int(countTuples(items[durableItems:o.Cut]))

	recovered, err := cp.run(stream.AsErrSource(stream.NewSliceSource(items[o.Cut:])), log2)
	if err != nil {
		log2.Close()
		return nil, fmt.Errorf("dst: recovered run: %w", err)
	}
	if err := log2.Close(); err != nil {
		return nil, fmt.Errorf("dst: close recovered log: %w", err)
	}
	o.Recovered = recovered
	o.OutputDigest = DigestOutput(recovered)

	// Loss reference: the uninterrupted trajectory over what survived.
	lossItems := append(items[:durableItems:durableItems], items[o.Cut:]...)
	lossRef, err := p.runSync(lossItems, p.handler(), nil)
	if err != nil {
		return nil, fmt.Errorf("dst: loss reference run: %w", err)
	}
	o.LossRef = lossRef

	if err := oracle.CrashContinuation(lossRef, recovered); err != nil {
		o.fail("crash continuation: %v", err)
	}

	// Cross-core check under crash loss: the flipped aggregation core must
	// agree with the loss reference on the surviving stream, so the
	// equivalence contract holds across snapshot/restore boundaries too
	// (fiba-core plans snapshot the tree, legacy plans the window maps).
	flip := p.flipCore()
	lossRefAlt, err := flip.runSync(lossItems, flip.handler(), nil)
	if err != nil {
		return nil, fmt.Errorf("dst: flipped-core loss reference run: %w", err)
	}
	if err := oracle.SameOutput(lossRef, lossRefAlt); err != nil {
		o.fail("core-equivalence (%s vs %s): %v", p.core(), flip.core(), err)
	}

	// Quality across the crash: the θ contract on the loss reference (whose
	// KeepInput covers the whole surviving stream) with the crash gap folded
	// in as shed-equivalent loss. Tail damage is exempt from the loss
	// accounting — an injected disk fault can wipe an arbitrary span, which
	// is outside the shedding contract — but the contract itself still runs,
	// verifying the restored controller keeps honoring θ after recovery.
	if p.qualityChecked() {
		co := oracle.ContractOpts{Theta: p.Handler.Theta}
		if cp.Corrupt == "" {
			co.ExtraLoss = int64(o.Lost)
		}
		if err := oracle.QualityContract(lossRef, p.spec(), p.agg(), false, co); err != nil {
			o.fail("quality: %v", err)
		}
	}
	return o, nil
}
