package dst

import (
	"context"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/stream"
)

func TestSchedulerAdvancesOnSleep(t *testing.T) {
	s := NewScheduler()
	if err := s.Sleep(context.Background(), 250*time.Millisecond); err != nil {
		t.Fatalf("Sleep: %v", err)
	}
	if got := s.Elapsed(); got != 250*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 250ms", got)
	}
	if got := s.Slept(); got != 250*time.Millisecond {
		t.Fatalf("Slept = %v, want 250ms", got)
	}
}

func TestSchedulerSleepHonorsCancelledContext(t *testing.T) {
	s := NewScheduler()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Sleep(ctx, time.Second); err == nil {
		t.Fatal("Sleep on cancelled context: want error")
	}
	if s.Elapsed() != 0 {
		t.Fatalf("cancelled Sleep advanced time by %v", s.Elapsed())
	}
}

func TestSchedulerFiresEventsInOrder(t *testing.T) {
	s := NewScheduler()
	var fired []int
	s.Schedule(30*time.Millisecond, func() { fired = append(fired, 3) })
	s.Schedule(10*time.Millisecond, func() { fired = append(fired, 1) })
	s.Schedule(10*time.Millisecond, func() { fired = append(fired, 2) }) // same time: schedule order
	s.Advance(20 * time.Millisecond)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("after Advance(20ms): fired = %v, want [1 2]", fired)
	}
	if !s.Step() {
		t.Fatal("Step: want remaining event")
	}
	if len(fired) != 3 || fired[2] != 3 {
		t.Fatalf("after Step: fired = %v, want [1 2 3]", fired)
	}
	if s.Step() {
		t.Fatal("Step on empty queue: want false")
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", s.Pending())
	}
}

func TestSchedulerAdvanceToStream(t *testing.T) {
	s := NewScheduler()
	s.AdvanceToStream(3 * stream.Second)
	if got := s.Elapsed(); got != 3*time.Second {
		t.Fatalf("Elapsed = %v, want 3s (1 stream unit = 1ms)", got)
	}
	s.AdvanceToStream(stream.Second) // time is monotone: no going back
	if got := s.Elapsed(); got != 3*time.Second {
		t.Fatalf("Elapsed moved backwards to %v", got)
	}
}

// TestDSTDeterminism is the core replay contract: the same seed must
// yield a byte-identical event transcript and byte-identical engine
// output across two independent executions (run under -race in CI).
func TestDSTDeterminism(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		seed := seed
		t.Run(strconv.FormatUint(seed, 10), func(t *testing.T) {
			t.Parallel()
			p := PlanForSeed(seed)
			a, err := Execute(p)
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			b, err := Execute(p)
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if a.ItemsDigest != b.ItemsDigest {
				t.Errorf("event transcript diverged: %.12s vs %.12s", a.ItemsDigest, b.ItemsDigest)
			}
			if a.OutputDigest != b.OutputDigest {
				t.Errorf("engine output diverged: %.12s vs %.12s", a.OutputDigest, b.OutputDigest)
			}
			if cd := DigestOutput(a.Conc); cd != DigestOutput(b.Conc) {
				t.Errorf("concurrent output diverged across runs")
			}
			if a.TraceDigest == "" || a.TraceDigest != b.TraceDigest {
				t.Errorf("event trace diverged: %.12s vs %.12s", a.TraceDigest, b.TraceDigest)
			}
		})
	}
}

// sweepSeeds returns how many seeds the sweep covers: DST_SEEDS when set,
// a small smoke budget otherwise (kept low so `make check -race` stays
// fast; `make dst` and nightly runs raise it).
func sweepSeeds(t *testing.T) int {
	if s := os.Getenv("DST_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("DST_SEEDS=%q: want a positive integer", s)
		}
		return n
	}
	if testing.Short() {
		return 4
	}
	return 12
}

// TestDSTSweep executes the seed-derived plan matrix through the full
// differential oracle. A failing seed is shrunk to a minimal plan and
// dumped as a transcript under the test's artifact directory so it can
// be promoted to testdata/ as a regression.
func TestDSTSweep(t *testing.T) {
	n := sweepSeeds(t)
	for seed := 0; seed < n; seed++ {
		seed := uint64(seed)
		t.Run(strconv.FormatUint(seed, 10), func(t *testing.T) {
			t.Parallel()
			p := PlanForSeed(seed)
			o, err := Execute(p)
			if err != nil {
				t.Fatalf("%s: %v", p, err)
			}
			if len(o.Failures) == 0 {
				return
			}
			t.Errorf("%s failed oracle checks: %v", p, o.Failures)
			min := Shrink(p, func(c Plan) bool {
				oc, err := Execute(c)
				return err == nil && len(oc.Failures) > 0
			}, 48)
			oc, err := Execute(min)
			if err != nil || len(oc.Failures) == 0 {
				t.Logf("shrink lost the failure (err=%v); keeping original plan", err)
				min, oc = p, o
			}
			path := filepath.Join(t.TempDir(), "shrunk.json")
			if werr := NewTranscript(oc, "shrunk from sweep seed "+strconv.FormatUint(seed, 10)).Write(path); werr == nil {
				t.Logf("shrunk failing plan written to %s\n%s", path, min)
			}
		})
	}
}

// TestDSTTranscripts replays every committed transcript in testdata/ —
// each one pins a workload digest and output digest for a configuration
// that once exposed a bug.
func TestDSTTranscripts(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed transcripts in testdata/ — the regression net is gone")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			tr, err := ReadTranscript(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Replay(); err != nil {
				t.Errorf("%s (%s): %v", path, tr.Note, err)
			}
		})
	}
}

// TestShrinkReducesPlan drives the shrinker with a synthetic predicate:
// any plan with dup faults "fails", so shrinking must strip everything
// else while keeping DupRate.
func TestShrinkReducesPlan(t *testing.T) {
	p := PlanForSeed(3)
	p.Chaos = ChaosPlan{DupRate: 0.01, ErrRate: 0.02, SpikeRate: 0.001, SpikeLen: 16}
	p.NumKeys, p.Shards, p.Batch, p.Heartbeat = 32, 4, 256, stream.Second
	fails := func(c Plan) bool { return c.Chaos.DupRate > 0 }
	min := Shrink(p, fails, 200)
	if min.Chaos.DupRate == 0 {
		t.Fatal("shrink removed the failing dimension")
	}
	if min.Chaos.ErrRate != 0 || min.Chaos.SpikeRate != 0 || min.NumKeys > 1 ||
		min.Shards > 1 || min.Batch > 1 || min.Heartbeat != 0 {
		t.Errorf("shrink left reducible dimensions: %s", min)
	}
	if min.N >= p.N {
		t.Errorf("shrink did not reduce workload: n=%d (from %d)", min.N, p.N)
	}
}

// TestTranscriptRoundTrip checks Write/Read symmetry.
func TestTranscriptRoundTrip(t *testing.T) {
	o, err := Execute(PlanForSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTranscript(o, "round-trip")
	path := filepath.Join(t.TempDir(), "t.json")
	if err := tr.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTranscript(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != tr {
		t.Fatalf("round trip changed transcript:\n got %+v\nwant %+v", got, tr)
	}
}

// TestNetReplayPreservesTranscript pins the Plan.Net contract directly:
// a transcript pushed through the netstream wire protocol decodes to the
// byte-identical item sequence, and the shrinker drops the Net dimension
// before anything else.
func TestNetReplayPreservesTranscript(t *testing.T) {
	p := PlanForSeed(11)
	p.Net = true
	items := p.transcript()
	decoded, err := replayNetstream(items)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := DigestItems(decoded), DigestItems(items); got != want {
		t.Fatalf("wire round trip changed the transcript: %s != %s (%d vs %d items)",
			got, want, len(decoded), len(items))
	}

	// Net is the first reduction candidate: a failure that reproduces
	// without the wire keeps shrinking with Net already gone.
	cands := candidates(p)
	if len(cands) == 0 || cands[0].Net {
		t.Fatal("shrinker does not try dropping Net first")
	}
	min := Shrink(p, func(c Plan) bool { return true }, 200)
	if min.Net {
		t.Error("shrink kept the Net dimension against an always-failing predicate")
	}
}

// TestNetReconnectReplayDedup pins the reconnect half of the Net
// contract directly: the transcript framed as provenance-marked batches
// across a connection cut — the redial resending the boundary batch
// with its identical mark — deduplicates by batch id back to the
// byte-identical item sequence.
func TestNetReconnectReplayDedup(t *testing.T) {
	p := PlanForSeed(11)
	items := p.transcript()
	if len(items) < 2*64 {
		t.Fatalf("transcript too short to cross a batch boundary: %d items", len(items))
	}
	deduped, err := replayNetstreamReconnect(items, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := DigestItems(deduped), DigestItems(items); got != want {
		t.Fatalf("reconnect replay changed the transcript: %s != %s (%d vs %d items)",
			got, want, len(deduped), len(items))
	}
	// A degenerate batch size exercises many marks and a mid-stream cut
	// on a short prefix too.
	short, err := replayNetstreamReconnect(items[:10], 3)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := DigestItems(short), DigestItems(items[:10]); got != want {
		t.Fatalf("short reconnect replay diverged: %s != %s", got, want)
	}
}
