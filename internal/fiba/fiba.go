// Package fiba implements a finger B-tree aggregator (FiBA) for
// sliding-window aggregation over out-of-order streams, after
// Tangwongsan, Hirzel and Schneider, "Optimal and General Out-of-Order
// Sliding-Window Aggregation" (arXiv 1810.11308) and its bulk-eviction
// extension (arXiv 2307.11210).
//
// The tree stores (timestamp, sequence) keyed values in the leaves of a
// B+-tree and caches, in every node, the monoid partial of its subtree.
// Two fingers — direct pointers to the leftmost and rightmost leaves —
// make the access pattern a disorder buffer produces cheap:
//
//   - in-order insert (key ≥ the current maximum) appends through the
//     right finger in amortized O(1);
//   - an out-of-order insert at distance d from the end climbs from the
//     right finger to the first spine node covering the key and descends,
//     O(log d) amortized rather than a root search's O(log n);
//   - evicting the prefix below a watermark peels leftmost leaves without
//     rebalancing, amortized O(1) per evicted entry;
//   - a range aggregate combines O(B·log n) cached node partials.
//
// Partial-aggregate invalidation is limited to the spine: an update dirties
// only the path from the touched leaf to the first already-dirty ancestor,
// and partials are recomputed lazily at the next range query. The monoid is
// supplied by the caller (see Monoid and monoid.go); internal/window builds
// its pluggable "fiba" aggregation core on top of this package, documented
// in docs/ALGORITHMS.md.
package fiba

import (
	"repro/internal/stream"
)

// Key orders tree entries: event timestamp first, then the tuple sequence
// number as a tiebreaker, so duplicates of one timestamp keep a stable,
// arrival-independent total order.
type Key struct {
	TS  stream.Time
	Seq uint64
}

// Less reports the strict (TS, Seq) lexicographic order.
func (k Key) Less(o Key) bool {
	if k.TS != o.TS {
		return k.TS < o.TS
	}
	return k.Seq < o.Seq
}

// Entry is one stored tuple value.
type Entry struct {
	Key
	Val float64
}

// Monoid is the aggregation a Tree maintains. Identity is the empty
// aggregate, Lift embeds one tuple value, and Combine merges two partials.
// Combine must be associative and pure (it must not mutate its arguments:
// partials are cached inside tree nodes and reused across queries); it
// need not be commutative — the tree always combines left to right in key
// order.
type Monoid[P any] interface {
	Identity() P
	Lift(v float64) P
	Combine(a, b P) P
}

// Stats are cumulative tree counters.
type Stats struct {
	Inserts      int64 // total inserts
	AppendFast   int64 // in-order inserts taking the O(1) right-finger path
	FingerSearch int64 // out-of-order inserts resolved by a finger climb
	FingerSteps  int64 // climb+descend node steps across all finger searches
	Splits       int64 // node splits (leaf and internal)
	Evicted      int64 // entries removed by EvictBelow
	EvictCalls   int64 // EvictBelow calls that removed at least one entry
	RangeQueries int64 // RangeAgg calls
	Combines     int64 // monoid Combine invocations (query + lazy repair)
}

// Node fanout. Leaves hold up to maxLeaf entries; internal nodes up to
// maxKids children. Wide leaves amortize per-node overhead on the append
// path; a narrower internal fanout keeps partial recombination after a
// spine update cheap.
const (
	maxLeaf = 32
	maxKids = 8
)

type node[P any] struct {
	parent *node[P]
	lo     Key  // smallest key in the subtree
	agg    P    // cached subtree partial, valid iff !dirty
	dirty  bool // partial needs recomputation (spine invalidation)

	// Leaf fields.
	leaf       bool
	ents       []Entry
	next, prev *node[P]

	// Internal fields. kids[i].lo separates the children, so no separate
	// separator-key array is maintained.
	kids []*node[P]
}

// Tree is a finger B-tree aggregator. The zero value is not usable; build
// with New. Not safe for concurrent use.
type Tree[P any] struct {
	m           Monoid[P]
	root        *node[P]
	left, right *node[P] // leaf fingers
	size        int
	stats       Stats

	// Node free lists: prefix eviction discards nodes at the same steady
	// rate splits create them, so recycling keeps the hot insert/evict
	// cycle allocation-free after warmup.
	freeLeaves, freeNodes []*node[P]
}

// freeListCap bounds each free list; beyond it, discarded nodes go to the
// GC (a shrinking tree should release memory eventually).
const freeListCap = 64

// newLeaf returns a recycled or fresh leaf node.
func (t *Tree[P]) newLeaf() *node[P] {
	if n := len(t.freeLeaves); n > 0 {
		nd := t.freeLeaves[n-1]
		t.freeLeaves = t.freeLeaves[:n-1]
		return nd
	}
	return &node[P]{leaf: true, ents: make([]Entry, 0, maxLeaf+1)}
}

// newInternal returns a recycled or fresh internal node.
func (t *Tree[P]) newInternal() *node[P] {
	if n := len(t.freeNodes); n > 0 {
		nd := t.freeNodes[n-1]
		t.freeNodes = t.freeNodes[:n-1]
		return nd
	}
	return &node[P]{kids: make([]*node[P], 0, maxKids+1)}
}

// release returns an unlinked node to its free list, clearing references
// so recycled nodes cannot pin evicted data.
func (t *Tree[P]) release(n *node[P]) {
	var zero P
	n.parent, n.next, n.prev = nil, nil, nil
	n.agg, n.dirty = zero, false
	if n.leaf {
		n.ents = n.ents[:0]
		if len(t.freeLeaves) < freeListCap {
			t.freeLeaves = append(t.freeLeaves, n)
		}
		return
	}
	for i := range n.kids {
		n.kids[i] = nil
	}
	n.kids = n.kids[:0]
	if len(t.freeNodes) < freeListCap {
		t.freeNodes = append(t.freeNodes, n)
	}
}

// New returns an empty tree maintaining m.
func New[P any](m Monoid[P]) *Tree[P] {
	return &Tree[P]{m: m}
}

// Len returns the number of stored entries.
func (t *Tree[P]) Len() int { return t.size }

// Stats returns cumulative counters.
func (t *Tree[P]) Stats() Stats { return t.stats }

// Height returns the tree height (0 when empty, 1 for a single leaf).
func (t *Tree[P]) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if n.leaf {
			break
		}
		n = n.kids[0]
	}
	return h
}

// MinKey returns the smallest stored key; ok is false when empty.
func (t *Tree[P]) MinKey() (Key, bool) {
	if t.left == nil {
		return Key{}, false
	}
	return t.left.ents[0].Key, true
}

// MaxKey returns the largest stored key; ok is false when empty.
func (t *Tree[P]) MaxKey() (Key, bool) {
	if t.right == nil {
		return Key{}, false
	}
	return t.right.ents[len(t.right.ents)-1].Key, true
}

func (t *Tree[P]) combine(a, b P) P {
	t.stats.Combines++
	return t.m.Combine(a, b)
}

// Insert adds one entry. Keys ≥ the current maximum append through the
// right finger in amortized O(1); an out-of-order key at distance d from
// the end costs O(log d) amortized.
func (t *Tree[P]) Insert(k Key, v float64) {
	t.stats.Inserts++
	if t.root == nil {
		leaf := t.newLeaf()
		leaf.lo, leaf.dirty = k, true
		leaf.ents = append(leaf.ents, Entry{Key: k, Val: v})
		t.root, t.left, t.right = leaf, leaf, leaf
		t.size = 1
		return
	}
	r := t.right
	if !k.Less(r.ents[len(r.ents)-1].Key) {
		// In-order fast path: k is ≥ everything stored, append at the end.
		t.stats.AppendFast++
		t.leafInsert(r, len(r.ents), Entry{Key: k, Val: v})
		return
	}
	// Finger search: climb the right spine until the subtree's key space
	// covers k, then descend. Right-spine node n covers [n.lo, +inf).
	t.stats.FingerSearch++
	n := r
	for n.parent != nil && k.Less(n.lo) {
		n = n.parent
		t.stats.FingerSteps++
	}
	for !n.leaf {
		// Route to the last child whose lo ≤ k (equal keys go right, so the
		// new duplicate lands after its equals); keys below every child's lo
		// fall through to kids[0].
		c := n.kids[0]
		for _, kid := range n.kids[1:] {
			if k.Less(kid.lo) {
				break
			}
			c = kid
		}
		n = c
		t.stats.FingerSteps++
	}
	// Upper-bound position: first entry strictly greater than k.
	pos := 0
	for pos < len(n.ents) && !k.Less(n.ents[pos].Key) {
		pos++
	}
	t.leafInsert(n, pos, Entry{Key: k, Val: v})
}

// leafInsert places e at position pos of leaf n, dirties the spine, fixes
// lo keys, and splits on overflow.
func (t *Tree[P]) leafInsert(n *node[P], pos int, e Entry) {
	n.ents = append(n.ents, Entry{})
	copy(n.ents[pos+1:], n.ents[pos:])
	n.ents[pos] = e
	t.size++
	t.markDirty(n)
	if pos == 0 {
		updateLo(n)
	}
	if len(n.ents) > maxLeaf {
		t.splitLeaf(n)
	}
}

// markDirty invalidates the cached partials on the path from n to the
// root, stopping at the first already-dirty node (its ancestors are dirty
// by invariant) — this is what limits invalidation to the spine.
func (t *Tree[P]) markDirty(n *node[P]) {
	for ; n != nil && !n.dirty; n = n.parent {
		n.dirty = true
	}
}

// updateLo recomputes n.lo from its content and propagates the new bound
// up while n remains its parent's first child.
func updateLo[P any](n *node[P]) {
	for n != nil {
		if n.leaf {
			if len(n.ents) == 0 {
				return
			}
			n.lo = n.ents[0].Key
		} else {
			n.lo = n.kids[0].lo
		}
		if n.parent == nil || n.parent.kids[0] != n {
			return
		}
		n = n.parent
	}
}

func (t *Tree[P]) splitLeaf(n *node[P]) {
	t.stats.Splits++
	mid := len(n.ents) / 2
	right := t.newLeaf()
	right.dirty = true
	right.ents = append(right.ents, n.ents[mid:]...)
	n.ents = n.ents[:mid]
	right.lo = right.ents[0].Key
	right.prev, right.next = n, n.next
	if n.next != nil {
		n.next.prev = right
	}
	n.next = right
	if t.right == n {
		t.right = right
	}
	t.insertChild(n, right)
}

func (t *Tree[P]) splitInternal(n *node[P]) {
	t.stats.Splits++
	mid := len(n.kids) / 2
	right := t.newInternal()
	right.dirty = true
	right.kids = append(right.kids, n.kids[mid:]...)
	n.kids = n.kids[:mid]
	for _, kid := range right.kids {
		kid.parent = right
	}
	right.lo = right.kids[0].lo
	t.insertChild(n, right)
}

// insertChild links sib (newly split off from n) into n's parent directly
// after n, growing a new root when n was the root.
func (t *Tree[P]) insertChild(n, sib *node[P]) {
	p := n.parent
	if p == nil {
		root := t.newInternal()
		root.dirty, root.lo = true, n.lo
		root.kids = append(root.kids, n, sib)
		n.parent, sib.parent = root, root
		t.root = root
		return
	}
	sib.parent = p
	pos := 0
	for pos < len(p.kids) && p.kids[pos] != n {
		pos++
	}
	pos++
	p.kids = append(p.kids, nil)
	copy(p.kids[pos+1:], p.kids[pos:])
	p.kids[pos] = sib
	if len(p.kids) > maxKids {
		t.splitInternal(p)
	}
}

// InsertBatch inserts a batch of entries, sorting a copy first (stable, so
// duplicate keys keep their slice order) so consecutive inserts stay close
// to one finger. An in-order batch appended to the end of the tree costs
// amortized O(1) per entry.
func (t *Tree[P]) InsertBatch(entries []Entry) {
	sorted := true
	for i := 1; i < len(entries); i++ {
		if entries[i].Key.Less(entries[i-1].Key) {
			sorted = false
			break
		}
	}
	if !sorted {
		cp := make([]Entry, len(entries))
		copy(cp, entries)
		insertionSortStable(cp)
		entries = cp
	}
	for _, e := range entries {
		t.Insert(e.Key, e.Val)
	}
}

// insertionSortStable sorts entries by key, stable. Binary-search insertion
// keeps comparisons low on the nearly-sorted batches a disorder buffer
// releases; fully random batches are rare and still O(n²) moves bounded by
// batch size.
func insertionSortStable(es []Entry) {
	for i := 1; i < len(es); i++ {
		e := es[i]
		lo, hi := 0, i
		for lo < hi {
			m := (lo + hi) / 2
			if e.Key.Less(es[m].Key) {
				hi = m
			} else {
				lo = m + 1
			}
		}
		copy(es[lo+1:i+1], es[lo:i])
		es[lo] = e
	}
}

// EvictBelow removes every entry with timestamp < ts (bulk prefix
// eviction) and returns how many were removed. It peels whole leftmost
// leaves without rebalancing — the relaxed left-spine invariant of the
// bulk-eviction algorithm — and collapses the root when levels empty,
// amortized O(1) per evicted entry.
func (t *Tree[P]) EvictBelow(ts stream.Time) int {
	cut := Key{TS: ts}
	removed := 0
	for t.left != nil {
		leaf := t.left
		i := 0
		for i < len(leaf.ents) && leaf.ents[i].Key.Less(cut) {
			i++
		}
		if i == 0 {
			break
		}
		removed += i
		if i == len(leaf.ents) {
			t.removeLeftLeaf(leaf)
			continue
		}
		leaf.ents = append(leaf.ents[:0], leaf.ents[i:]...)
		t.markDirty(leaf)
		updateLo(leaf)
		break
	}
	t.size -= removed
	if removed > 0 {
		t.stats.Evicted += int64(removed)
		t.stats.EvictCalls++
	}
	return removed
}

// removeLeftLeaf unlinks the leftmost leaf, cascading removal through
// ancestors that empty and collapsing single-child roots.
func (t *Tree[P]) removeLeftLeaf(leaf *node[P]) {
	next := leaf.next
	if next != nil {
		next.prev = nil
	}
	t.left = next
	p := leaf.parent
	t.release(leaf)
	for p != nil {
		// The node being removed is p's first child: it is on the leftmost
		// path by construction.
		copy(p.kids, p.kids[1:])
		p.kids[len(p.kids)-1] = nil
		p.kids = p.kids[:len(p.kids)-1]
		if len(p.kids) > 0 {
			break
		}
		dead := p
		p = p.parent
		t.release(dead)
	}
	if p == nil {
		// The whole tree emptied out.
		t.root, t.left, t.right = nil, nil, nil
		return
	}
	t.markDirty(p)
	updateLo(p)
	for !t.root.leaf && len(t.root.kids) == 1 {
		old := t.root
		t.root = t.root.kids[0]
		t.root.parent = nil
		t.release(old)
	}
}

// clean returns n's subtree partial, recomputing (and caching) it if the
// spine invalidation dirtied it.
func (t *Tree[P]) clean(n *node[P]) P {
	if !n.dirty {
		return n.agg
	}
	var a P
	if n.leaf {
		a = t.m.Identity()
		for i := range n.ents {
			a = t.combine(a, t.m.Lift(n.ents[i].Val))
		}
	} else {
		a = t.clean(n.kids[0])
		for _, kid := range n.kids[1:] {
			a = t.combine(a, t.clean(kid))
		}
	}
	n.agg = a
	n.dirty = false
	return a
}

// RangeAgg returns the monoid fold, in key order, over all entries with
// lo ≤ ts < hi. It combines cached subtree partials for fully covered
// children and recurses down the O(log n) boundary paths, so a query costs
// O(B·log n) combines plus any lazy partial repair.
func (t *Tree[P]) RangeAgg(lo, hi stream.Time) P {
	t.stats.RangeQueries++
	acc := t.m.Identity()
	if t.root == nil || lo >= hi {
		return acc
	}
	return t.rangeNode(t.root, Key{TS: lo}, Key{TS: hi}, acc)
}

func (t *Tree[P]) rangeNode(n *node[P], lo, hi Key, acc P) P {
	if n.leaf {
		for i := range n.ents {
			if n.ents[i].Key.Less(lo) {
				continue
			}
			if !n.ents[i].Key.Less(hi) {
				break
			}
			acc = t.combine(acc, t.m.Lift(n.ents[i].Val))
		}
		return acc
	}
	for i, kid := range n.kids {
		if !kid.lo.Less(hi) {
			break // this child and everything right of it starts at/after hi
		}
		if i+1 < len(n.kids) {
			nextLo := n.kids[i+1].lo
			if !lo.Less(nextLo) {
				continue // child's key space [kid.lo, nextLo) ends at/before lo
			}
			if !kid.lo.Less(lo) && !hi.Less(nextLo) {
				// [kid.lo, nextLo) ⊆ [lo, hi): take the cached partial whole.
				acc = t.combine(acc, t.clean(kid))
				continue
			}
		}
		// Boundary child (or the rightmost child, whose upper bound is
		// unknown): recurse.
		acc = t.rangeNode(kid, lo, hi, acc)
	}
	return acc
}

// RangeEach calls fn for every entry with lo ≤ ts < hi, in key order:
// one O(log n) descent to the first covered leaf, then a next-pointer walk.
func (t *Tree[P]) RangeEach(lo, hi stream.Time, fn func(v float64)) {
	if t.root == nil || lo >= hi {
		return
	}
	loK, hiK := Key{TS: lo}, Key{TS: hi}
	n := t.root
	for !n.leaf {
		c := n.kids[0]
		for _, kid := range n.kids[1:] {
			if loK.Less(kid.lo) {
				break
			}
			c = kid
		}
		n = c
	}
	for ; n != nil; n = n.next {
		for i := range n.ents {
			if n.ents[i].Key.Less(loK) {
				continue
			}
			if !n.ents[i].Key.Less(hiK) {
				return
			}
			fn(n.ents[i].Val)
		}
	}
}

// Entries appends every stored entry to out in key order and returns the
// result. Snapshot export uses it; restoring via InsertBatch on the sorted
// output rebuilds an equivalent tree in O(n).
func (t *Tree[P]) Entries(out []Entry) []Entry {
	for n := t.left; n != nil; n = n.next {
		out = append(out, n.ents...)
	}
	return out
}
