package fiba

// Ready-made monoids for the common aggregates. internal/window has its
// own specialized partial (one struct covering count/sum/min/max with the
// exact merge arithmetic of its legacy aggregates); these are the
// free-standing forms for direct Tree users, tests and benchmarks.

// SumMonoid aggregates float64 sums.
type SumMonoid struct{}

// Identity implements Monoid.
func (SumMonoid) Identity() float64 { return 0 }

// Lift implements Monoid.
func (SumMonoid) Lift(v float64) float64 { return v }

// Combine implements Monoid.
func (SumMonoid) Combine(a, b float64) float64 { return a + b }

// CountMonoid counts entries.
type CountMonoid struct{}

// Identity implements Monoid.
func (CountMonoid) Identity() int64 { return 0 }

// Lift implements Monoid.
func (CountMonoid) Lift(float64) int64 { return 1 }

// Combine implements Monoid.
func (CountMonoid) Combine(a, b int64) int64 { return a + b }

// MinMax is the partial of MinMaxMonoid: the extrema of a non-empty set,
// with N = 0 as the identity.
type MinMax struct {
	N        int64
	Min, Max float64
}

// MinMaxMonoid tracks minimum and maximum together.
type MinMaxMonoid struct{}

// Identity implements Monoid.
func (MinMaxMonoid) Identity() MinMax { return MinMax{} }

// Lift implements Monoid.
func (MinMaxMonoid) Lift(v float64) MinMax { return MinMax{N: 1, Min: v, Max: v} }

// Combine implements Monoid.
func (MinMaxMonoid) Combine(a, b MinMax) MinMax {
	if a.N == 0 {
		return b
	}
	if b.N == 0 {
		return a
	}
	c := MinMax{N: a.N + b.N, Min: a.Min, Max: a.Max}
	if b.Min < c.Min {
		c.Min = b.Min
	}
	if b.Max > c.Max {
		c.Max = b.Max
	}
	return c
}

// AvgPair is the pair-monoid partial for averages: sum and count travel
// together so the mean is sum/n at read time.
type AvgPair struct {
	Sum float64
	N   int64
}

// Mean returns the average (NaN-free only when N > 0; callers check N).
func (p AvgPair) Mean() float64 { return p.Sum / float64(p.N) }

// AvgMonoid aggregates averages via the (sum, count) pair monoid.
type AvgMonoid struct{}

// Identity implements Monoid.
func (AvgMonoid) Identity() AvgPair { return AvgPair{} }

// Lift implements Monoid.
func (AvgMonoid) Lift(v float64) AvgPair { return AvgPair{Sum: v, N: 1} }

// Combine implements Monoid.
func (AvgMonoid) Combine(a, b AvgPair) AvgPair {
	return AvgPair{Sum: a.Sum + b.Sum, N: a.N + b.N}
}
