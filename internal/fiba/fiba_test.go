package fiba

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/stream"
)

// refModel is the naive reference the property tests compare against: a
// sorted slice with linear-time operations.
type refModel struct {
	ents []Entry
}

func (m *refModel) insert(k Key, v float64) {
	pos := 0
	for pos < len(m.ents) && !k.Less(m.ents[pos].Key) {
		pos++
	}
	m.ents = append(m.ents, Entry{})
	copy(m.ents[pos+1:], m.ents[pos:])
	m.ents[pos] = Entry{Key: k, Val: v}
}

func (m *refModel) evictBelow(ts stream.Time) int {
	cut := Key{TS: ts}
	i := 0
	for i < len(m.ents) && m.ents[i].Key.Less(cut) {
		i++
	}
	m.ents = m.ents[i:]
	return i
}

func (m *refModel) rangeSum(lo, hi stream.Time) (sum float64, n int64) {
	for _, e := range m.ents {
		if e.TS >= lo && e.TS < hi {
			sum += e.Val
			n++
		}
	}
	return sum, n
}

// checkInvariants walks the tree white-box and verifies the structural
// invariants: sorted leaf chain, correct lo keys and parent pointers,
// fanout bounds, the dirty-spine invariant (a dirty node's ancestors are
// dirty), and finger/size consistency.
func checkInvariants(t *testing.T, tr *Tree[float64]) {
	t.Helper()
	if tr.root == nil {
		if tr.left != nil || tr.right != nil || tr.size != 0 {
			t.Fatalf("empty tree with fingers/size set: left=%v right=%v size=%d", tr.left, tr.right, tr.size)
		}
		return
	}
	// Walk down to the leftmost/rightmost leaves and check finger identity.
	lm, rm := tr.root, tr.root
	for !lm.leaf {
		lm = lm.kids[0]
	}
	for !rm.leaf {
		rm = rm.kids[len(rm.kids)-1]
	}
	if tr.left != lm || tr.right != rm {
		t.Fatalf("fingers out of place")
	}
	count := 0
	var walk func(n *node[float64], depth int) int
	leafDepth := -1
	var walkErr bool
	var check func(cond bool, format string, args ...any)
	check = func(cond bool, format string, args ...any) {
		if !cond && !walkErr {
			walkErr = true
			t.Fatalf(format, args...)
		}
	}
	walk = func(n *node[float64], depth int) int {
		if n.dirty && n.parent != nil {
			check(n.parent.dirty, "dirty node with clean parent")
		}
		if n.leaf {
			check(len(n.ents) > 0, "empty leaf in tree")
			check(len(n.ents) <= maxLeaf, "leaf overflow: %d", len(n.ents))
			check(n.lo == n.ents[0].Key, "leaf lo mismatch")
			for i := 1; i < len(n.ents); i++ {
				check(!n.ents[i].Key.Less(n.ents[i-1].Key), "leaf entries out of order")
			}
			if leafDepth == -1 {
				leafDepth = depth
			}
			check(leafDepth == depth, "leaves at different depths: %d vs %d", leafDepth, depth)
			count += len(n.ents)
			return depth
		}
		check(len(n.kids) > 0, "empty internal node")
		check(len(n.kids) <= maxKids, "internal overflow: %d", len(n.kids))
		check(n.lo == n.kids[0].lo, "internal lo mismatch")
		for i, kid := range n.kids {
			check(kid.parent == n, "broken parent pointer")
			if i > 0 {
				check(!kid.lo.Less(n.kids[i-1].lo), "children out of order")
			}
			walk(kid, depth+1)
		}
		return depth
	}
	walk(tr.root, 0)
	if count != tr.size {
		t.Fatalf("size %d but %d entries reachable", tr.size, count)
	}
	// Leaf chain matches the in-order walk.
	chain := 0
	prev := Key{TS: -1 << 60}
	for n := tr.left; n != nil; n = n.next {
		for _, e := range n.ents {
			if e.Key.Less(prev) {
				t.Fatalf("leaf chain out of order")
			}
			prev = e.Key
			chain++
		}
	}
	if chain != tr.size {
		t.Fatalf("leaf chain has %d entries, size %d", chain, tr.size)
	}
}

// TestTreeRandomOps drives random interleavings of in-order inserts,
// out-of-order inserts, bulk evictions and range queries against the
// naive reference, over several seeds. Values are small integers so sums
// are exact in float64 and equality can be strict.
func TestTreeRandomOps(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rng := stats.NewRNG(seed * 0x9e3779b97f4a7c15)
		tr := New[float64](SumMonoid{})
		ref := &refModel{}
		var nextTS stream.Time
		var seq uint64
		var evicted stream.Time
		for step := 0; step < 4000; step++ {
			switch op := rng.Intn(10); {
			case op < 5: // in-order insert
				nextTS += stream.Time(rng.Intn(5))
				k := Key{TS: nextTS, Seq: seq}
				seq++
				v := float64(rng.Intn(100))
				tr.Insert(k, v)
				ref.insert(k, v)
			case op < 8: // out-of-order insert behind the front, at/after the eviction horizon
				if nextTS <= evicted {
					continue
				}
				ts := evicted + stream.Time(rng.Intn(int(nextTS-evicted)))
				k := Key{TS: ts, Seq: seq}
				seq++
				v := float64(rng.Intn(100))
				tr.Insert(k, v)
				ref.insert(k, v)
			case op < 9: // bulk evict a prefix
				if nextTS <= evicted {
					continue
				}
				cut := evicted + stream.Time(rng.Intn(int(nextTS-evicted)+1))
				if cut > evicted {
					evicted = cut
				}
				got, want := tr.EvictBelow(cut), ref.evictBelow(cut)
				if got != want {
					t.Fatalf("seed %d step %d: EvictBelow(%d) removed %d, want %d", seed, step, cut, got, want)
				}
			default: // range query
				lo := evicted + stream.Time(rng.Intn(int(nextTS-evicted+1)))
				hi := lo + stream.Time(rng.Intn(200))
				got := tr.RangeAgg(lo, hi)
				want, wantN := ref.rangeSum(lo, hi)
				if got != want {
					t.Fatalf("seed %d step %d: RangeAgg(%d,%d)=%g, want %g", seed, step, lo, hi, got, want)
				}
				var each float64
				var eachN int64
				tr.RangeEach(lo, hi, func(v float64) { each += v; eachN++ })
				if each != want || eachN != wantN {
					t.Fatalf("seed %d step %d: RangeEach sum=%g n=%d, want %g n=%d", seed, step, each, eachN, want, wantN)
				}
			}
			if step%97 == 0 {
				checkInvariants(t, tr)
			}
		}
		checkInvariants(t, tr)
		if got, want := tr.Entries(nil), ref.ents; len(got) != len(want) {
			t.Fatalf("seed %d: %d entries, want %d", seed, len(got), len(want))
		} else {
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d: entry %d = %+v, want %+v", seed, i, got[i], want[i])
				}
			}
		}
		if tr.Len() != len(ref.ents) {
			t.Fatalf("seed %d: Len %d, want %d", seed, tr.Len(), len(ref.ents))
		}
	}
}

// TestInsertBatchMatchesSequential checks the bulk insert against
// one-at-a-time inserts of the same (shuffled) batch, including duplicate
// keys whose slice order must be preserved.
func TestInsertBatchMatchesSequential(t *testing.T) {
	rng := stats.NewRNG(42)
	var batch []Entry
	for i := 0; i < 500; i++ {
		batch = append(batch, Entry{
			Key: Key{TS: stream.Time(rng.Intn(300)), Seq: uint64(i)},
			Val: float64(rng.Intn(50)),
		})
	}
	bulk := New[float64](SumMonoid{})
	bulk.InsertBatch(batch)
	seq := New[float64](SumMonoid{})
	ref := &refModel{}
	for _, e := range batch {
		seq.Insert(e.Key, e.Val)
		ref.insert(e.Key, e.Val)
	}
	b, s := bulk.Entries(nil), seq.Entries(nil)
	if len(b) != len(s) || len(b) != len(batch) {
		t.Fatalf("entry counts differ: bulk=%d seq=%d in=%d", len(b), len(s), len(batch))
	}
	for i := range b {
		if b[i] != s[i] || b[i] != ref.ents[i] {
			t.Fatalf("entry %d: bulk=%+v seq=%+v ref=%+v", i, b[i], s[i], ref.ents[i])
		}
	}
	if got, want := bulk.RangeAgg(0, 1<<40), seq.RangeAgg(0, 1<<40); got != want {
		t.Fatalf("bulk RangeAgg %g, want %g", got, want)
	}
}

// TestInOrderFastPath verifies the right-finger append path handles a pure
// in-order stream: every insert after the first takes the O(1) path and
// queries stay correct across evictions.
func TestInOrderFastPath(t *testing.T) {
	tr := New[float64](SumMonoid{})
	const n = 10000
	for i := 0; i < n; i++ {
		tr.Insert(Key{TS: stream.Time(i)}, 1)
	}
	if st := tr.Stats(); st.AppendFast != n-1 {
		t.Fatalf("AppendFast = %d, want %d", st.AppendFast, n-1)
	}
	if got := tr.RangeAgg(0, n); got != n {
		t.Fatalf("RangeAgg = %g, want %d", got, n)
	}
	if removed := tr.EvictBelow(n / 2); removed != n/2 {
		t.Fatalf("EvictBelow removed %d, want %d", removed, n/2)
	}
	if got := tr.RangeAgg(0, n); got != n/2 {
		t.Fatalf("RangeAgg after evict = %g, want %d", got, n/2)
	}
	if tr.EvictBelow(2*n) != n/2 || tr.Len() != 0 {
		t.Fatalf("full eviction left %d entries", tr.Len())
	}
	if _, ok := tr.MinKey(); ok {
		t.Fatal("MinKey ok on empty tree")
	}
	// The tree must be reusable after emptying out.
	tr.Insert(Key{TS: 7}, 3)
	if got := tr.RangeAgg(0, 100); got != 3 {
		t.Fatalf("RangeAgg after refill = %g, want 3", got)
	}
	checkInvariants(t, tr)
}

// TestMonoids exercises the ready-made monoids through the tree.
func TestMonoids(t *testing.T) {
	vals := []float64{5, 1, 9, 3, 3, 7}
	mm := New[MinMax](MinMaxMonoid{})
	av := New[AvgPair](AvgMonoid{})
	ct := New[int64](CountMonoid{})
	for i, v := range vals {
		k := Key{TS: stream.Time(i * 10)}
		mm.Insert(k, v)
		av.Insert(k, v)
		ct.Insert(k, v)
	}
	if got := mm.RangeAgg(0, 100); got.Min != 1 || got.Max != 9 || got.N != 6 {
		t.Fatalf("MinMax = %+v", got)
	}
	if got := av.RangeAgg(0, 100); got.Sum != 28 || got.N != 6 || got.Mean() != 28.0/6 {
		t.Fatalf("AvgPair = %+v", got)
	}
	if got := ct.RangeAgg(10, 40); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	if got := mm.RangeAgg(50, 20); got.N != 0 {
		t.Fatalf("inverted range returned %+v", got)
	}
}

// TestOutOfOrderDistanceStats sanity-checks the finger-search accounting:
// bounded-distance disorder must not trigger root-depth searches once the
// tree is large.
func TestOutOfOrderDistanceStats(t *testing.T) {
	tr := New[float64](SumMonoid{})
	rng := stats.NewRNG(7)
	const n, d = 20000, 64
	for i := 0; i < n; i++ {
		ts := stream.Time(i)
		if i > d && rng.Intn(4) == 0 {
			ts -= stream.Time(1 + rng.Intn(d))
		}
		tr.Insert(Key{TS: ts, Seq: uint64(i)}, 1)
	}
	st := tr.Stats()
	if st.FingerSearch == 0 {
		t.Fatal("no finger searches recorded for an out-of-order stream")
	}
	steps := float64(st.FingerSteps) / float64(st.FingerSearch)
	// log_B(d) is ~2 levels for d=64 at leaf fanout 32; the climb+descend
	// walk should stay well under the full height-to-root round trip that a
	// root search of 20k entries would pay every time.
	if steps > 8 {
		t.Fatalf("mean finger steps %.1f — out-of-order inserts are not using the finger", steps)
	}
	if got := tr.RangeAgg(0, n); got != n {
		t.Fatalf("RangeAgg = %g, want %d", got, n)
	}
}
