package exp

import (
	"fmt"
	"sort"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/join"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/window"
)

// Experiment is one entry of the evaluation suite.
type Experiment struct {
	ID    string
	Title string
	Run   func(s Scale) []Table
}

// All returns the full reconstructed evaluation suite in order.
func All() []Experiment {
	return []Experiment{
		{ID: "R1+R2", Title: "latency vs. quality bound; compliance", Run: R1R2},
		{ID: "R3", Title: "adaptation under delay drift", Run: R3},
		{ID: "R4", Title: "aggregate-function coverage", Run: R4},
		{ID: "R5", Title: "delay-distribution sensitivity", Run: R5},
		{ID: "R6", Title: "join recall vs. latency", Run: R6},
		{ID: "R7", Title: "disorder-handling throughput", Run: R7},
		{ID: "R8", Title: "window size and slide sweep", Run: R8},
		{ID: "R9", Title: "controller ablation", Run: R9},
		{ID: "R10", Title: "pane (stream slicing) ablation [extension]", Run: R10},
		{ID: "R11", Title: "grouped query scaling [extension]", Run: R11},
		{ID: "R12", Title: "quality-driven load shedding [extension]", Run: R12},
		{ID: "R13", Title: "session windows under disorder [extension]", Run: R13},
		{ID: "R14", Title: "speculation (refinements) vs. buffering [extension]", Run: R14},
		{ID: "R16", Title: "batched transport + sharded grouped execution [extension]", Run: R16},
	}
}

// Standard query shape shared by the aggregate experiments.
var (
	stdSpec   = window.Spec{Size: 10 * stream.Second, Slide: stream.Second}
	stdThetas = []float64{0.001, 0.005, 0.01, 0.02, 0.05, 0.1}
	stdSlacks = []stream.Time{500, 1 * stream.Second, 2 * stream.Second, 4 * stream.Second, 8 * stream.Second}
)

func aqHandler(theta float64, spec window.Spec, agg window.Factory) buffer.Handler {
	return core.NewAQKSlack(core.Config{Theta: theta, Spec: spec, Agg: agg})
}

// sortedNames returns map keys in deterministic order.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// R1R2 runs R1 (result latency vs. quality bound θ for AQ-K-slack against
// the baseline handlers) and R2 (requested vs. achieved quality) from one
// set of executions.
func R1R2(s Scale) []Table {
	tuples := gen.Sensor(s.N(200000), 1).Arrivals()
	agg := window.Sum()
	oracle := window.Oracle(stdSpec, agg, tuples)

	r1 := Table{
		ID:    "R1",
		Title: fmt.Sprintf("mean result latency vs. quality bound (sum, %v, sensor workload, n=%d)", stdSpec, len(tuples)),
		Cols:  []string{"handler", "theta", "meanLat", "p95Lat", "meanErr", "p95Err", "compliance", "steadyK"},
		Notes: []string{
			"expected shape: AQ latency grows as theta tightens; every fixed K-slack is dominated at some theta",
			"maxslack ~ zero error at the highest latency; none ~ lowest latency at the highest error",
		},
	}
	r2 := Table{
		ID:    "R2",
		Title: "requested vs. achieved error (AQ-K-slack)",
		Cols:  []string{"theta", "meanErr", "p95Err", "compliance", "estErr(last)", "realizedEWMA"},
		Notes: []string{
			"expected shape: meanErr tracks just below theta (the controller targets Safety=0.8 of the bound on the mean)",
			"per-window compliance is partial at tight thetas: the bound is a mean-error contract, and the per-window error distribution has a tail (see p95Err)",
		},
	}

	for _, theta := range stdThetas {
		name := fmt.Sprintf("aq(%.1f%%)", 100*theta)
		o := RunAgg(name, tuples, oracle, stdSpec, agg, aqHandler(theta, stdSpec, agg), theta)
		r1.AddRow(name, Pct(theta), Ms(o.Latency.Mean), Ms(o.Latency.P95),
			Pct(o.Quality.MeanRelErr), Pct(o.Quality.P95RelErr), PctC(o.Quality.Compliance), Ms(SteadyK(o.Trace)))
		r2.AddRow(Pct(theta), Pct(o.Quality.MeanRelErr), Pct(o.Quality.P95RelErr),
			PctC(o.Quality.Compliance), Pct(o.Quality2.LastEstErr), Pct(o.Quality2.RealizedErrEWMA))
	}

	base := Baselines(stdSlacks)
	for _, name := range sortedNames(base) {
		o := RunAgg(name, tuples, oracle, stdSpec, agg, base[name](), 0.01)
		r1.AddRow(name, "-", Ms(o.Latency.Mean), Ms(o.Latency.P95),
			Pct(o.Quality.MeanRelErr), Pct(o.Quality.P95RelErr), PctC(o.Quality.Compliance), Ms(float64(o.Handler.MaxK)))
	}

	// Perfect-information lower bound: oracle punctuations released by a
	// punctuation-trusting buffer give exact results at the minimum
	// latency any exact method can achieve.
	punct := RunAggSource("punctuated*", stream.NewSliceSource(gen.WithOracleWatermarks(tuples, 64)),
		len(tuples), oracle, stdSpec, agg, buffer.NewPunctuated(), 0.01)
	r1.AddRow("punctuated*", "-", Ms(punct.Latency.Mean), Ms(punct.Latency.P95),
		Pct(punct.Quality.MeanRelErr), Pct(punct.Quality.P95RelErr), PctC(punct.Quality.Compliance), "-")
	r1.Notes = append(r1.Notes,
		"punctuated* uses oracle completeness watermarks (perfect future knowledge): the latency lower bound for exact results")
	return []Table{r1, r2}
}

// R3 traces the adaptive slack K(t) through a 4x mean-delay step.
func R3(s Scale) []Table {
	n := s.N(200000)
	stepAt := stream.Time(n/2) * 10 // event time of the step (interval 10)
	tuples := gen.SensorDrift(n, stepAt, 3).Arrivals()
	agg := window.Sum()
	oracle := window.Oracle(stdSpec, agg, tuples)
	theta := 0.01

	o := RunAgg("aq", tuples, oracle, stdSpec, agg, aqHandler(theta, stdSpec, agg), theta)

	t := Table{
		ID:    "R3",
		Title: fmt.Sprintf("adaptation trace: K(t) with a 4x delay step at t=%s (theta=%s)", Ms(float64(stepAt)), Pct(theta)),
		Cols:  []string{"t", "K", "estErr", "realizedErr", "piFactor"},
		Notes: []string{
			"expected shape: K roughly quadruples within a few adaptation periods after the step, then stabilizes",
			fmt.Sprintf("end-to-end quality across the whole run: meanErr=%s p95Err=%s compliance=%s",
				Pct(o.Quality.MeanRelErr), Pct(o.Quality.P95RelErr), PctC(o.Quality.Compliance)),
		},
	}
	// Sample the trace to ~40 rows.
	tr := o.Trace
	step := len(tr)/40 + 1
	for i := 0; i < len(tr); i += step {
		p := tr[i]
		t.AddRow(Ms(float64(p.At)), Ms(float64(p.K)), Pct(p.EstErr), Pct(p.RealizedErr), F(p.PIFactor, 2))
	}

	// Companion view: achieved error over event time, bucketed, showing
	// the transient violation around the step and the recovery.
	binned := Table{
		ID:    "R3b",
		Title: fmt.Sprintf("achieved error over time through the step (bin=60s, theta=%s)", Pct(theta)),
		Cols:  []string{"t", "windows", "meanErr", "maxErr", "compliance", "meanLat"},
		Notes: []string{"expected shape: a compliance dip in the bins right after the step, then recovery to the pre-step level"},
	}
	rep, err := cq.New(stream.FromTuples(tuples)).
		Handle(aqHandler(theta, stdSpec, agg)).
		Window(stdSpec, agg).
		Run()
	if err != nil {
		panic(err)
	}
	// Boundary windows forced out at flush carry end-of-stream latency;
	// bin only the progress-emitted results.
	bins := metrics.TimeBinned(rep.Results[:rep.PreFlush], oracle, 60*int64(stream.Second), theta)
	for _, b := range bins {
		binned.AddRow(Ms(float64(b.Start)), I(int64(b.Windows)), Pct(b.MeanRelErr),
			Pct(b.MaxRelErr), PctC(b.Compliance), Ms(b.MeanLat))
	}
	return []Table{t, binned}
}

// R4 covers the aggregate functions at a fixed quality bound. The value
// distribution carries rare 20x spikes so that loss sensitivity actually
// differs across functions: extremes and sums hinge on whether a spike is
// late, while means and medians barely notice.
func R4(s Scale) []Table {
	c := gen.Sensor(s.N(150000), 4)
	// ~1 spike per 10s window: losing it moves max (and stddev) a lot.
	c.Values = gen.Spikes{Base: 100, Factor: 20, P: 0.001}
	tuples := c.Arrivals()
	theta := 0.01
	t := Table{
		ID:    "R4",
		Title: fmt.Sprintf("aggregate-function coverage at theta=%s (spiky values)", Pct(theta)),
		Cols:  []string{"aggregate", "meanErr", "p95Err", "compliance", "meanLat", "latVsMax", "steadyK"},
		Notes: []string{
			"latVsMax = AQ mean latency / MAX-slack mean latency (same aggregate): the latency the quality budget buys back",
			"expected shape: avg/median tolerate loss best (K ~ 0); sum/count need moderate K; max and stddev hinge on the (rare) spikes being on time and need the most slack",
		},
	}
	for _, agg := range window.AllFactories() {
		oracle := window.Oracle(stdSpec, agg, tuples)
		aq := RunAgg("aq", tuples, oracle, stdSpec, agg, aqHandler(theta, stdSpec, agg), theta)
		ms := RunAgg("maxslack", tuples, oracle, stdSpec, agg, buffer.NewMaxSlack(), theta)
		ratio := 0.0
		if ms.Latency.Mean > 0 {
			ratio = aq.Latency.Mean / ms.Latency.Mean
		}
		t.AddRow(agg.Name, Pct(aq.Quality.MeanRelErr), Pct(aq.Quality.P95RelErr),
			PctC(aq.Quality.Compliance), Ms(aq.Latency.Mean), F(ratio, 3), Ms(SteadyK(aq.Trace)))
	}
	return []Table{t}
}

// R5 compares delay distributions with matched mean (500), plus the
// discrete-event network simulation whose delays emerge from queueing.
func R5(s Scale) []Table {
	n := s.N(150000)
	theta := 0.01
	agg := window.Sum()

	models := []struct {
		name string
		mk   func(seed uint64) []stream.Tuple
	}{
		{"uniform(0,1000)", func(seed uint64) []stream.Tuple {
			c := gen.Sensor(n, seed)
			c.Delays = delay.Uniform{Lo: 0, Hi: 1000}
			return c.Arrivals()
		}},
		{"exp(500)", func(seed uint64) []stream.Tuple {
			c := gen.Sensor(n, seed)
			c.Delays = delay.Exponential{MeanD: 500}
			return c.Arrivals()
		}},
		{"normal(500,150)", func(seed uint64) []stream.Tuple {
			c := gen.Sensor(n, seed)
			c.Delays = delay.Normal{Mu: 500, Sigma: 150}
			return c.Arrivals()
		}},
		{"pareto(500,1.8)", func(seed uint64) []stream.Tuple {
			c := gen.Sensor(n, seed)
			c.Delays = delay.ParetoWithMean(500, 1.8)
			return c.Arrivals()
		}},
		{"simnet(2-path)", func(seed uint64) []stream.Tuple {
			c := gen.Sensor(n, seed)
			c.Delays = delay.Zero{}
			net := sim.DefaultNetwork()
			net.Seed = seed
			return sim.Transport(c.Events(), net)
		}},
	}

	t := Table{
		ID:    "R5",
		Title: fmt.Sprintf("delay-distribution sensitivity at theta=%s (matched mean 500 except simnet)", Pct(theta)),
		Cols:  []string{"delays", "ooo%", "maxLate", "meanErr", "compliance", "meanLat", "steadyK"},
		Notes: []string{
			"expected shape: matched means do not imply matched slack — K is set by the lateness quantile at the loss budget after window headroom; the Pareto body is mostly tiny (rare extremes are surrendered to the error budget), so it needs less K than bounded uniform/normal whose mass sits near the mean",
			"simnet delays emerge from queueing+multipath in the discrete-event simulator (internal/sim)",
		},
	}
	for _, m := range models {
		tuples := m.mk(5)
		oracle := window.Oracle(stdSpec, agg, tuples)
		o := RunAgg(m.name, tuples, oracle, stdSpec, agg, aqHandler(theta, stdSpec, agg), theta)
		t.AddRow(m.name, PctC(o.Disorder.FracOutOfOrder()), Ms(float64(o.Disorder.MaxLateness)),
			Pct(o.Quality.MeanRelErr), PctC(o.Quality.Compliance), Ms(o.Latency.Mean), Ms(SteadyK(o.Trace)))
	}
	return []Table{t}
}

// R6 evaluates quality-driven buffering for band joins: recall vs. pair
// latency.
func R6(s Scale) []Table {
	n := s.N(60000)
	mk := func(src uint8, seed uint64) []stream.Tuple {
		c := gen.Config{
			N: n, Interval: 10, Poisson: true, NumKeys: 64,
			Values: gen.UniformValue{Lo: 0, Hi: 100},
			Delays: delay.ParetoWithMean(400, 1.8),
			Seed:   seed,
		}
		ts := c.Events()
		for i := range ts {
			ts[i].Src = src
		}
		return ts
	}
	left := mk(0, 61)
	right := mk(1, 62)
	merged := append(append([]stream.Tuple{}, left...), right...)
	stream.SortByArrival(merged)
	jcfg := join.Config{Band: 500, KeyMatch: true, RetainFor: 60 * stream.Second}

	t := Table{
		ID:    "R6",
		Title: fmt.Sprintf("join recall vs. latency (band=%s, 64 keys, n=2x%d)", Ms(float64(jcfg.Band)), n),
		Cols:  []string{"handler", "target", "recall", "precision", "meanPairLat", "steadyK"},
		Notes: []string{
			"expected shape: AQ meets each recall target with latency between the fixed slacks bracketing it",
			"precision stays 1.0 for all buffered handlers (buffering never fabricates pairs)",
		},
	}

	for _, recall := range []float64{0.90, 0.95, 0.99, 0.999} {
		recall := recall
		name := fmt.Sprintf("aq-join(%.1f%%)", 100*recall)
		o := RunJoin(name, merged, left, right, jcfg, func(statsFn func() join.Stats) buffer.Handler {
			return core.NewAQJoin(core.JoinConfig{Recall: recall, Band: jcfg.Band}, statsFn)
		})
		t.AddRow(name, PctC(recall), PctC(o.Pairs.Recall), F(o.Pairs.Precision, 4), Ms(o.MeanLat), Ms(o.SteadyK))
	}
	fixed := map[string]func() buffer.Handler{
		"none":        func() buffer.Handler { return buffer.Zero() },
		"kslack-1s":   func() buffer.Handler { return buffer.NewKSlack(stream.Second) },
		"kslack-4s":   func() buffer.Handler { return buffer.NewKSlack(4 * stream.Second) },
		"kslack-16s":  func() buffer.Handler { return buffer.NewKSlack(16 * stream.Second) },
		"maxslack":    func() buffer.Handler { return buffer.NewMaxSlack() },
		"wm-p95":      func() buffer.Handler { return buffer.NewPercentile(0.95, 500) },
		"kslack-250m": func() buffer.Handler { return buffer.NewKSlack(250) },
	}
	for _, name := range sortedNames(fixed) {
		mkH := fixed[name]
		o := RunJoin(name, merged, left, right, jcfg, func(func() join.Stats) buffer.Handler { return mkH() })
		t.AddRow(name, "-", PctC(o.Pairs.Recall), F(o.Pairs.Precision, 4), Ms(o.MeanLat), Ms(o.SteadyK))
	}

	// R6b: the m-way generalization — a three-way join driven by the same
	// recall model with missRate = 1-(1-p)^3. MWay has no retained-state
	// miss accounting, so AQ runs open loop (model only).
	mN := n / 4 // 3-way output grows fast; keep the combination count sane
	mk3 := func(src uint8, seed uint64) []stream.Tuple {
		c := gen.Config{
			N: mN, Interval: 10, Poisson: true, NumKeys: 64,
			Values: gen.UniformValue{Lo: 0, Hi: 100},
			Delays: delay.ParetoWithMean(400, 1.8),
			Seed:   seed,
		}
		ts := c.Events()
		for i := range ts {
			ts[i].Src = src
		}
		return ts
	}
	streams := [][]stream.Tuple{mk3(0, 71), mk3(1, 72), mk3(2, 73)}
	var merged3 []stream.Tuple
	for _, st := range streams {
		merged3 = append(merged3, st...)
	}
	stream.SortByArrival(merged3)
	j3cfg := join.Config{Band: 500, KeyMatch: true}
	oracle3 := join.OracleMWay(3, j3cfg, streams)

	t3 := Table{
		ID:    "R6b",
		Title: fmt.Sprintf("three-way join recall (band=%s, 64 keys, n=3x%d, model-only AQ)", Ms(float64(j3cfg.Band)), mN),
		Cols:  []string{"handler", "target", "recall", "combos", "steadyK"},
		Notes: []string{
			"expected shape: per-combination miss compounds over 3 constituents, so the same recall target needs more slack than the 2-way case",
		},
	}
	run3 := func(name string, h buffer.Handler, target string) {
		op := join.NewMWay(3, j3cfg)
		var rel []stream.Tuple
		var results []join.MResult
		var now stream.Time
		for _, tp := range merged3 {
			now = tp.Arrival
			rel = h.Insert(stream.DataItem(tp), rel[:0])
			for _, r := range rel {
				results = op.Insert(int(r.Src), r, now, results)
			}
		}
		rel = h.Flush(rel[:0])
		for _, r := range rel {
			results = op.Insert(int(r.Src), r, now, results)
		}
		emitted := make(map[string]struct{}, len(results))
		for _, r := range results {
			emitted[r.Key()] = struct{}{}
		}
		hits := 0
		for k := range emitted {
			if _, ok := oracle3[k]; ok {
				hits++
			}
		}
		recall := 1.0
		if len(oracle3) > 0 {
			recall = float64(hits) / float64(len(oracle3))
		}
		steady := float64(h.K())
		if aq, ok := h.(*core.AQJoin); ok {
			steady = SteadyK(aq.Trace())
		}
		t3.AddRow(name, target, PctC(recall), I(int64(len(emitted))), Ms(steady))
	}
	for _, recall := range []float64{0.95, 0.99} {
		run3(fmt.Sprintf("aq-join3(%.0f%%)", 100*recall),
			core.NewAQJoin(core.JoinConfig{Recall: recall, Band: j3cfg.Band, Streams: 3}, nil),
			PctC(recall))
	}
	run3("none", buffer.Zero(), "-")
	run3("kslack-4s", buffer.NewKSlack(4*stream.Second), "-")
	run3("maxslack", buffer.NewMaxSlack(), "-")
	return []Table{t, t3}
}

// R7 measures per-handler pipeline throughput (wall clock).
func R7(s Scale) []Table {
	tuples := gen.Sensor(s.N(500000), 7).Arrivals()
	agg := window.Sum()
	oracle := window.Oracle(stdSpec, agg, tuples)

	t := Table{
		ID:    "R7",
		Title: fmt.Sprintf("disorder-handling throughput (tuples/s, n=%d, incl. window operator)", len(tuples)),
		Cols:  []string{"handler", "tuples/s", "maxBuffered", "meanErr"},
		Notes: []string{
			"expected shape: none is fastest; kslack/maxslack pay the sort heap (~2x); aq pays the estimator (~10-20x vs kslack at the default per-slide adaptation; amortize via Config.AdaptEvery/LossRefresh) while still exceeding 100k tuples/s",
		},
	}
	handlers := map[string]func() buffer.Handler{
		"none":      func() buffer.Handler { return buffer.Zero() },
		"kslack-2s": func() buffer.Handler { return buffer.NewKSlack(2 * stream.Second) },
		"maxslack":  func() buffer.Handler { return buffer.NewMaxSlack() },
		"wm-p95":    func() buffer.Handler { return buffer.NewPercentile(0.95, 500) },
		"aq(1%)":    func() buffer.Handler { return aqHandler(0.01, stdSpec, agg) },
	}
	for _, name := range sortedNames(handlers) {
		o := RunAgg(name, tuples, oracle, stdSpec, agg, handlers[name](), 0.01)
		t.AddRow(name, F(o.Throughput, 0), I(int64(o.Handler.MaxHeld)), Pct(o.Quality.MeanRelErr))
	}
	return []Table{t}
}

// R8 sweeps window size and slide at a fixed bound.
func R8(s Scale) []Table {
	tuples := gen.Sensor(s.N(150000), 8).Arrivals()
	agg := window.Sum()
	theta := 0.01
	t := Table{
		ID:    "R8",
		Title: fmt.Sprintf("window sweep at theta=%s (sum, sensor workload)", Pct(theta)),
		Cols:  []string{"size", "slide", "meanErr", "compliance", "meanLat", "steadyK"},
		Notes: []string{
			"expected shape: larger windows tolerate the same delays with smaller K (per-tuple loss probability falls), so latency shrinks relative to window size",
		},
	}
	for _, size := range []stream.Time{1, 5, 10, 30, 60} {
		for _, slide := range []stream.Time{1, 5, 10} {
			if slide > size {
				continue
			}
			spec := window.Spec{Size: size * stream.Second, Slide: slide * stream.Second}
			oracle := window.Oracle(spec, agg, tuples)
			o := RunAgg("aq", tuples, oracle, spec, agg, aqHandler(theta, spec, agg), theta)
			t.AddRow(Ms(float64(spec.Size)), Ms(float64(spec.Slide)),
				Pct(o.Quality.MeanRelErr), PctC(o.Quality.Compliance), Ms(o.Latency.Mean), Ms(SteadyK(o.Trace)))
		}
	}
	return []Table{t}
}

// R9 ablates the controller on the drift workload.
func R9(s Scale) []Table {
	n := s.N(150000)
	stepAt := stream.Time(n/2) * 10
	tuples := gen.SensorDrift(n, stepAt, 9).Arrivals()
	agg := window.Sum()
	oracle := window.Oracle(stdSpec, agg, tuples)
	theta := 0.01

	t := Table{
		ID:    "R9",
		Title: fmt.Sprintf("controller ablation on the drift workload (theta=%s)", Pct(theta)),
		Cols:  []string{"variant", "meanErr", "p95Err", "compliance", "meanLat"},
		Notes: []string{
			"expected shape: hybrid gets near-model latency with better compliance than model-only; pi-only (no model) reaches compliance only by over-buffering ~100x on latency",
			"slower adaptation (larger period) degrades compliance around the step",
		},
	}
	for _, mode := range []core.Mode{core.ModeHybrid, core.ModeModelOnly, core.ModePIOnly, core.ModePOnly} {
		cfg := core.Config{Theta: theta, Spec: stdSpec, Agg: agg, Mode: mode}
		o := RunAgg(mode.String(), tuples, oracle, stdSpec, agg, core.NewAQKSlack(cfg), theta)
		t.AddRow("mode="+mode.String(), Pct(o.Quality.MeanRelErr), Pct(o.Quality.P95RelErr),
			PctC(o.Quality.Compliance), Ms(o.Latency.Mean))
	}
	for _, period := range []stream.Time{500, stream.Second, 5 * stream.Second, 20 * stream.Second} {
		cfg := core.Config{Theta: theta, Spec: stdSpec, Agg: agg, AdaptEvery: period}
		name := "period=" + Ms(float64(period))
		o := RunAgg(name, tuples, oracle, stdSpec, agg, core.NewAQKSlack(cfg), theta)
		t.AddRow(name, Pct(o.Quality.MeanRelErr), Pct(o.Quality.P95RelErr),
			PctC(o.Quality.Compliance), Ms(o.Latency.Mean))
	}
	return []Table{t}
}
