package exp

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/delay"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/window"
)

// R10 ablates the pane-based (stream slicing) sliding-window evaluation
// against the naive per-window operator across overlap factors — the
// design-choice ablation DESIGN.md calls out for the window substrate.
func R10(s Scale) []Table {
	n := s.N(400000)
	tuples := gen.Config{N: n, Interval: 10, Seed: 10}.Arrivals() // ordered input isolates operator cost
	agg := window.Sum()

	t := Table{
		ID:    "R10",
		Title: fmt.Sprintf("pane (stream slicing) ablation: window-operator throughput (tuples/s, n=%d)", n),
		Cols:  []string{"size", "slide", "overlap", "naiveOp", "paneOp", "speedup"},
		Notes: []string{
			"overlap = Size/Slide = aggregate updates per tuple in the naive operator; panes do 1 update + merges per window",
			"expected shape: speedup grows with overlap, ~1x for tumbling windows (overlap 1)",
		},
	}
	run := func(mk func() interface {
		Observe(stream.Tuple, stream.Time, []window.Result) []window.Result
	}) float64 {
		start := time.Now()
		op := mk()
		var res []window.Result
		for _, tp := range tuples {
			res = op.Observe(tp, tp.Arrival, res[:0])
		}
		return float64(len(tuples)) / time.Since(start).Seconds()
	}
	for _, c := range []struct{ size, slide stream.Time }{
		{10 * stream.Second, 10 * stream.Second},
		{10 * stream.Second, stream.Second},
		{60 * stream.Second, stream.Second},
		{120 * stream.Second, stream.Second},
	} {
		spec := window.Spec{Size: c.size, Slide: c.slide}
		naive := run(func() interface {
			Observe(stream.Tuple, stream.Time, []window.Result) []window.Result
		} {
			return window.NewOp(spec, agg, window.DropLate, 0)
		})
		panes := run(func() interface {
			Observe(stream.Tuple, stream.Time, []window.Result) []window.Result
		} {
			return window.NewPaneOp(spec, agg)
		})
		t.AddRow(Ms(float64(c.size)), Ms(float64(c.slide)), I(int64(c.size/c.slide)),
			F(naive, 0), F(panes, 0), F(panes/naive, 2))
	}
	return []Table{t}
}

// R12 evaluates quality-driven load shedding: a theta sweep under fixed
// 4x overload, with and without Horvitz–Thompson compensation. The total
// budget is split half shedding, half disorder handling.
func R12(s Scale) []Table {
	n := s.N(200000)
	agg := window.Sum()

	t := Table{
		ID:    "R12",
		Title: "quality-driven load shedding under 4x overload (sum; budget split half shed / half buffer)",
		Cols:  []string{"theta", "compensate", "shedFrac", "pBudget", "wantedFrac", "meanErr", "compliance"},
		Notes: []string{
			"the load target asks for 75% shedding (4x overload); the shedder grants min(wanted, quality budget)",
			"expected shape: uncompensated shedding of a sum is capped near theta/2; Horvitz–Thompson compensation multiplies the budget until the sampling-variance term binds",
		},
	}
	tuples := gen.Sensor(n, 12).Arrivals()
	oracle := window.Oracle(stdSpec, agg, tuples)
	offered := 100.0 // sensor workload: 1 tuple / 10 stream-time units
	const overload = 4.0
	for _, theta := range []float64{0.01, 0.02, 0.05, 0.10} {
		for _, comp := range []bool{false, true} {
			inner := core.NewAQKSlack(core.Config{Theta: theta / 2, Spec: stdSpec, Agg: agg})
			sh := core.NewShedder(core.ShedConfig{
				Theta: theta / 2, Spec: stdSpec, Agg: agg,
				TargetRate: offered / overload, Compensate: comp,
			}, inner)
			o := RunAgg(fmt.Sprintf("theta=%g/comp=%v", theta, comp),
				tuples, oracle, stdSpec, agg, sh, theta)
			st := sh.Shed()
			t.AddRow(Pct(theta), fmt.Sprintf("%v", comp),
				PctC(st.ShedFrac()), PctC(st.MeanPBudget), PctC(st.MeanPWanted),
				Pct(o.Quality.MeanRelErr), PctC(o.Quality.Compliance))
		}
	}
	return []Table{t}
}

// R13 evaluates session windows under disorder: structural (boundary)
// accuracy and latency for the two repair mechanisms — upstream slack
// buffering vs. operator-level hold (allowed lateness) — against no
// handling.
func R13(s Scale) []Table {
	n := s.N(120000)
	gap := stream.Time(50)
	agg := window.Sum()

	// Keyed activity stream with explicit session structure and
	// heavy-tailed delays on the order of the gap.
	rng := stats.NewRNG(13)
	var tuples []stream.Tuple
	ts := stream.Time(0)
	dm := delay.ParetoWithMean(60, 1.8)
	for i := 0; i < n; i++ {
		g := stream.Time(rng.Intn(20))
		if rng.Intn(25) == 0 {
			g += 200
		}
		ts += g
		tuples = append(tuples, stream.Tuple{
			TS: ts, Arrival: ts + stream.Time(dm.Delay(ts, rng)),
			Seq: uint64(i), Key: uint64(rng.Intn(8)), Value: 1,
		})
	}
	stream.SortByArrival(tuples)

	t := Table{
		ID:    "R13",
		Title: fmt.Sprintf("session windows under disorder (gap=%s, n=%d, 8 keys)", Ms(float64(gap)), n),
		Cols:  []string{"mechanism", "boundaryAcc", "splits", "missing", "lateDrops", "meanLat"},
		Notes: []string{
			"boundaryAcc = fraction of oracle sessions reproduced with exact (key, start, end)",
			"expected shape: hold-H and kslack-H repair boundaries comparably at a similar latency cost; none splits sessions",
			"aq-session adapts the hold to the accuracy target: it should land between the fixed holds bracketing its target",
		},
	}
	type variant struct {
		name    string
		handler func() buffer.Handler
		hold    stream.Time
	}
	variants := []variant{
		{"none", func() buffer.Handler { return buffer.Zero() }, 0},
		{"hold-100ms", func() buffer.Handler { return buffer.Zero() }, 100},
		{"hold-500ms", func() buffer.Handler { return buffer.Zero() }, 500},
		{"kslack-100ms", func() buffer.Handler { return buffer.NewKSlack(100) }, 0},
		{"kslack-500ms", func() buffer.Handler { return buffer.NewKSlack(500) }, 0},
		{"maxslack", func() buffer.Handler { return buffer.NewMaxSlack() }, 0},
	}
	for _, v := range variants {
		rep, err := cq.NewSession(stream.FromTuples(tuples), gap, agg).
			Handle(v.handler()).
			Hold(v.hold).
			KeepInput().
			Run()
		if err != nil {
			panic(err)
		}
		q := rep.Quality(gap, agg)
		t.AddRow(v.name, PctC(q.BoundaryAccuracy()), I(int64(q.Splits)), I(int64(q.Missing)),
			I(rep.Op.LateDrops), Ms(rep.MeanLatency()))
	}

	// Quality-driven hold: AQSession adapts the hold to a boundary
	// accuracy target.
	oracle := window.SessionOracle(gap, agg, tuples)
	for _, beta := range []float64{0.95, 0.99} {
		a := core.NewAQSession(core.SessionConfig{Beta: beta, Gap: gap, Agg: agg})
		var out []window.SessionResult
		var now stream.Time
		for _, tp := range tuples {
			now = tp.Arrival
			out = a.Observe(tp, now, out)
		}
		preFlush := len(out)
		out = a.Flush(now, out)
		q := window.CompareSessions(out, oracle)
		var meanLat float64
		if preFlush > 0 {
			for _, r := range out[:preFlush] {
				meanLat += float64(r.Latency())
			}
			meanLat /= float64(preFlush)
		}
		t.AddRow(fmt.Sprintf("aq-session(%.0f%%)", 100*beta),
			PctC(q.BoundaryAccuracy()), I(int64(q.Splits)), I(int64(q.Missing)),
			I(a.Op().Stats().LateDrops), Ms(meanLat))
	}
	return []Table{t}
}

// R14 evaluates emit-then-refine (speculation) against buffering: with
// RefineLate, windows are emitted eagerly and re-emitted when stragglers
// arrive, so the *final* value converges while consumers absorb
// revisions. The trade-off axis is revisions vs. latency-to-first-result.
func R14(s Scale) []Table {
	n := s.N(150000)
	theta := 0.01
	agg := window.Sum()
	tuples := gen.Sensor(n, 14).Arrivals()
	oracle := window.Oracle(stdSpec, agg, tuples)

	t := Table{
		ID:    "R14",
		Title: fmt.Sprintf("speculation (emit + refine) vs. buffering (n=%d, refine horizon 60s)", n),
		Cols:  []string{"handler", "policy", "firstErr", "finalErr", "revised%", "revs/win", "firstLat"},
		Notes: []string{
			"firstErr = error of the primary (first) emissions; finalErr = error after refinements overwrite",
			"revs/win = refinement emissions per window: the downstream churn consumers must absorb",
			"expected shape: refinement drives finalErr toward zero regardless of buffering; buffering cuts the churn (revs/win) at the cost of first-result latency",
		},
	}
	handlers := []struct {
		name string
		mk   func() buffer.Handler
	}{
		{"none", func() buffer.Handler { return buffer.Zero() }},
		{"kslack-500ms", func() buffer.Handler { return buffer.NewKSlack(500) }},
		{"kslack-2s", func() buffer.Handler { return buffer.NewKSlack(2 * stream.Second) }},
		{"aq(1%)", func() buffer.Handler { return aqHandler(theta, stdSpec, agg) }},
	}
	for _, h := range handlers {
		for _, refine := range []bool{false, true} {
			b := cq.New(stream.FromTuples(tuples)).Handle(h.mk()).Window(stdSpec, agg)
			policy := "drop"
			if refine {
				policy = "refine"
				b = b.Refine(60 * stream.Second)
			}
			rep, err := b.Run()
			if err != nil {
				panic(err)
			}
			primary := window.Primary(rep.Results)
			firstQ := metrics.Compare(primary, oracle, metrics.CompareOpts{
				Theta: theta, SkipWarmup: warmupWindows, SkipEmptyOracle: true,
			})
			finalQ := metrics.Compare(rep.Results, oracle, metrics.CompareOpts{
				Theta: theta, SkipWarmup: warmupWindows, SkipEmptyOracle: true,
			})
			revised := map[int64]bool{}
			for _, r := range rep.Results {
				if r.Refinement {
					revised[r.Idx] = true
				}
			}
			revisedFrac := 0.0
			revsPerWin := 0.0
			if len(primary) > 0 {
				revisedFrac = float64(len(revised)) / float64(len(primary))
				revsPerWin = float64(rep.Op.Refinements) / float64(len(primary))
			}
			t.AddRow(h.name, policy, Pct(firstQ.MeanRelErr), Pct(finalQ.MeanRelErr),
				PctC(revisedFrac), F(revsPerWin, 2), Ms(rep.Latency(warmupWindows).Mean))
		}
	}
	return []Table{t}
}

// R11 scales the number of group-by keys for a quality-driven grouped
// query: throughput and per-key quality as key cardinality grows.
func R11(s Scale) []Table {
	n := s.N(200000)
	theta := 0.02
	agg := window.Sum()
	t := Table{
		ID:    "R11",
		Title: fmt.Sprintf("grouped (GROUP BY key) query scaling at theta=%s (n=%d)", Pct(theta), n),
		Cols:  []string{"keys", "tuples/s", "keyedWindows", "meanErr", "compliance", "meanLat"},
		Notes: []string{
			"expected shape: throughput degrades gently with key count (per-key window state); per-key error stays bounded",
			"per-key windows hold n/keys tuples, so relative error per window grows noisier as keys increase",
		},
	}
	for _, keys := range []int{1, 16, 256} {
		c := gen.Sensor(n, 11)
		c.NumKeys = keys
		h := core.NewAQKSlack(core.Config{Theta: theta, Spec: stdSpec, Agg: agg})
		start := time.Now()
		q := cq.New(c.Source()).Handle(buffer.Handler(h)).Window(stdSpec, agg).KeepInput()
		if keys > 1 {
			q = q.GroupBy()
		}
		rep, err := q.Run()
		if err != nil {
			panic(err)
		}
		wall := time.Since(start).Seconds()
		var quality metrics.QualityReport
		var windows int
		if keys > 1 {
			quality = rep.KeyedQuality(stdSpec, agg, metrics.CompareOpts{
				Theta: theta, SkipWarmup: 5, SkipEmptyOracle: true,
			})
			windows = len(rep.Keyed)
		} else {
			quality = rep.Quality(stdSpec, agg, metrics.CompareOpts{
				Theta: theta, SkipWarmup: warmupWindows, SkipEmptyOracle: true,
			})
			windows = len(rep.Results)
		}
		t.AddRow(I(int64(keys)), F(float64(n)/wall, 0), I(int64(windows)),
			Pct(quality.MeanRelErr), PctC(quality.Compliance), Ms(rep.Latency(5).Mean))
	}
	return []Table{t}
}

// R16 validates the batched-transport + sharded-execution engine (the
// PR3 tentpole): quality and compliance must be invariant across batch
// sizes (R16a) and shard counts (R16b), and the sharded executor's
// output must be byte-identical to the synchronous grouped Run. Absolute
// throughput depends on the host's core count — on a single-core host
// sharding shows bounded overhead, not speedup; BENCH_PR3.json records
// the same sweep with host metadata.
func R16(s Scale) []Table {
	n := s.N(200000)
	theta := 0.01
	agg := window.Sum()

	// R16a: transport batch sweep on a single-key adaptive query. The
	// engine's output contract makes every row identical except wall time.
	a := Table{
		ID:    "R16a",
		Title: fmt.Sprintf("batched transport sweep at theta=%s (RunConcurrent, n=%d)", Pct(theta), n),
		Cols:  []string{"batch", "tuples/s", "windows", "meanErr", "p95Err", "compliance", "meanLat"},
		Notes: []string{
			"expected shape: quality columns identical across batch sizes (batching changes transport, not semantics); throughput rises with batch as channel ops amortize",
		},
	}
	for _, batch := range []int{1, 64, 256} {
		c := gen.Sensor(n, 16)
		tuples := c.Arrivals()
		h := core.NewAQKSlack(core.Config{Theta: theta, Spec: stdSpec, Agg: agg})
		start := time.Now()
		rep, err := cq.New(stream.FromTuples(tuples)).
			Handle(buffer.Handler(h)).
			Window(stdSpec, agg).
			KeepInput().
			Batch(batch).
			RunConcurrent(context.Background(), nil)
		if err != nil {
			panic(err)
		}
		wall := time.Since(start).Seconds()
		quality := rep.Quality(stdSpec, agg, metrics.CompareOpts{
			Theta: theta, SkipWarmup: warmupWindows, SkipEmptyOracle: true,
		})
		a.AddRow(I(int64(batch)), F(float64(n)/wall, 0), I(int64(len(rep.Results))),
			Pct(quality.MeanRelErr), Pct(quality.P95RelErr), PctC(quality.Compliance),
			Ms(rep.Latency(warmupWindows).Mean))
	}

	// R16b: grouped shard sweep against the synchronous executor. The
	// identical column asserts the byte-identical output contract that the
	// deterministic merge guarantees.
	b := Table{
		ID:    "R16b",
		Title: fmt.Sprintf("sharded grouped execution at theta=%s (256 keys, n=%d, host cores=%d)", Pct(theta), n, runtime.NumCPU()),
		Cols:  []string{"executor", "tuples/s", "keyedWindows", "meanErr", "compliance", "identical"},
		Notes: []string{
			"identical = keyed result sequence equals the synchronous Run byte for byte (the sharded merge determinism contract)",
			"expected shape: quality/compliance identical everywhere; shards>1 speeds up only on multi-core hosts (single-core hosts see the coordination overhead instead)",
		},
	}
	c := gen.Sensor(n, 17)
	c.NumKeys = 256
	tuples := c.Arrivals()
	build := func() *cq.AggQuery {
		return cq.New(stream.FromTuples(tuples)).
			Handle(buffer.NewKSlack(2 * stream.Second)).
			Window(stdSpec, agg).
			GroupBy().KeepInput()
	}
	addRow := func(name string, rep *cq.AggReport, wall float64, baseline []window.KeyedResult) {
		identical := "-"
		if baseline != nil {
			same := len(rep.Keyed) == len(baseline)
			for i := 0; same && i < len(baseline); i++ {
				same = rep.Keyed[i] == baseline[i]
			}
			if same {
				identical = "yes"
			} else {
				identical = "NO"
			}
		}
		quality := rep.KeyedQuality(stdSpec, agg, metrics.CompareOpts{
			Theta: theta, SkipWarmup: 5, SkipEmptyOracle: true,
		})
		b.AddRow(name, F(float64(n)/wall, 0), I(int64(len(rep.Keyed))),
			Pct(quality.MeanRelErr), PctC(quality.Compliance), identical)
	}
	start := time.Now()
	syncRep, err := build().Run()
	if err != nil {
		panic(err)
	}
	addRow("sync", syncRep, time.Since(start).Seconds(), nil)
	for _, shards := range []int{1, 2, 4} {
		start := time.Now()
		rep, err := build().Shards(shards).Batch(128).RunConcurrent(context.Background(), nil)
		if err != nil {
			panic(err)
		}
		addRow(fmt.Sprintf("shards=%d", shards), rep, time.Since(start).Seconds(), syncRep.Keyed)
	}
	return []Table{a, b}
}
