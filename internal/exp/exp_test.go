package exp

import (
	"strings"
	"testing"

	"repro/internal/buffer"
	"repro/internal/gen"
	"repro/internal/stream"
	"repro/internal/window"
)

func TestScale(t *testing.T) {
	if got := Scale(0.5).N(100000); got != 50000 {
		t.Fatalf("Scale(0.5).N = %d", got)
	}
	if got := Scale(0).N(100000); got != 100000 {
		t.Fatalf("zero scale should mean full: %d", got)
	}
	if got := Scale(0.001).N(100000); got != 1000 {
		t.Fatalf("floor not applied: %d", got)
	}
	if got := Scale(2).N(100000); got != 100000 {
		t.Fatalf("out-of-range scale: %d", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{ID: "RX", Title: "demo", Cols: []string{"a", "bb"}}
	tb.AddRow("x", "1")
	tb.AddRow("longer", "22")
	tb.Notes = append(tb.Notes, "a note")
	s := tb.String()
	for _, want := range []string{"RX", "demo", "longer", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table output missing %q:\n%s", want, s)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := Ms(1500); got != "1500ms" {
		t.Fatalf("Ms(1500) = %q", got)
	}
	if got := Ms(25000); got != "25.00s" {
		t.Fatalf("Ms(25000) = %q", got)
	}
	if got := Pct(0.0123); got != "1.230%" {
		t.Fatalf("Pct = %q", got)
	}
	if got := I(42); got != "42" {
		t.Fatalf("I = %q", got)
	}
	if got := F(1.23456, 2); got != "1.23" {
		t.Fatalf("F = %q", got)
	}
}

func TestRunAggProducesOutcome(t *testing.T) {
	tuples := gen.Sensor(20000, 99).Arrivals()
	agg := window.Sum()
	oracle := window.Oracle(stdSpec, agg, tuples)
	o := RunAgg("kslack", tuples, oracle, stdSpec, agg, buffer.NewKSlack(2*stream.Second), 0.01)
	if o.Quality.Windows == 0 {
		t.Fatal("no windows compared")
	}
	if o.Latency.Results == 0 {
		t.Fatal("no latency results")
	}
	if o.Throughput <= 0 {
		t.Fatal("throughput not measured")
	}
	if o.Disorder.OutOfOrder == 0 {
		t.Fatal("disorder not measured")
	}
}

func TestSteadyK(t *testing.T) {
	if got := SteadyK(nil); got != 0 {
		t.Fatalf("SteadyK(nil) = %v", got)
	}
}

func TestBaselinesConstructible(t *testing.T) {
	for name, mk := range Baselines(stdSlacks) {
		h := mk()
		if h == nil {
			t.Fatalf("%s: nil handler", name)
		}
		// Each call must return a fresh handler, not shared state.
		if mk() == h {
			t.Fatalf("%s: handler not fresh", name)
		}
	}
}

// TestAllExperimentsRunTiny smoke-tests every experiment at minimal scale:
// tables render, every row has the advertised column count.
func TestAllExperimentsRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test is slow")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(Scale(0.001)) // floors at 1000 tuples
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("%s: empty table", tb.ID)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Cols) {
						t.Fatalf("%s: row %v has %d cells, want %d", tb.ID, row, len(row), len(tb.Cols))
					}
				}
				if tb.String() == "" {
					t.Fatalf("%s: empty rendering", tb.ID)
				}
			}
		})
	}
}

func TestTableFormats(t *testing.T) {
	tb := Table{ID: "RX", Title: "demo", Cols: []string{"a", "b"}, Notes: []string{"n1"}}
	tb.AddRow("x", "1")
	var md strings.Builder
	if err := tb.Write(&md, "md"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"### RX", "| a | b |", "| x | 1 |", "- n1"} {
		if !strings.Contains(md.String(), want) {
			t.Fatalf("markdown missing %q:\n%s", want, md.String())
		}
	}
	var csvOut strings.Builder
	if err := tb.Write(&csvOut, "csv"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# RX: demo", "a,b", "x,1"} {
		if !strings.Contains(csvOut.String(), want) {
			t.Fatalf("csv missing %q:\n%s", want, csvOut.String())
		}
	}
	var txt strings.Builder
	if err := tb.Write(&txt, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "== RX") {
		t.Fatalf("text format: %s", txt.String())
	}
	if err := tb.Write(&txt, "bogus"); err == nil {
		t.Fatal("unknown format accepted")
	}
}
