package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// WriteMarkdown renders the table as GitHub-flavoured markdown (title as a
// heading, notes as a trailing list).
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Cols, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Cols)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if len(t.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range t.Notes {
			fmt.Fprintf(&b, "- %s\n", n)
		}
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV: a comment line with the title, the
// header row, then data rows. Notes are omitted (CSV is for plotting).
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Cols); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Write renders the table in the named format: "text" (default aligned
// columns), "md", or "csv".
func (t *Table) Write(w io.Writer, format string) error {
	switch format {
	case "", "text":
		_, err := t.WriteTo(w)
		return err
	case "md", "markdown":
		return t.WriteMarkdown(w)
	case "csv":
		return t.WriteCSV(w)
	default:
		return fmt.Errorf("exp: unknown format %q (want text, md or csv)", format)
	}
}
