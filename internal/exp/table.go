// Package exp defines the reconstructed evaluation suite R1–R9 (see
// DESIGN.md §4): each experiment builds its workload, executes every
// compared configuration through the cq engine, and returns plain-text
// tables with the rows/series a paper figure or table would plot.
// cmd/experiments runs the suite at full scale; the bench targets in
// bench_test.go re-run each experiment at reduced scale.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment output: a titled, column-aligned text table.
type Table struct {
	ID    string // experiment id, e.g. "R1"
	Title string
	Cols  []string
	Rows  [][]string
	Notes []string // expected-shape commentary printed under the table
}

// AddRow appends a formatted row; values are used as-is.
func (t *Table) AddRow(vals ...string) {
	t.Rows = append(t.Rows, vals)
}

// WriteTo renders the table with aligned columns.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, v := range row {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	writeRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(v)
			}
			if i == 0 { // left-align the label column
				b.WriteString(v)
				b.WriteString(strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(v)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Cols)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.WriteTo(&b) //nolint:errcheck // strings.Builder cannot fail
	return b.String()
}

// Formatting helpers shared by experiments.

// F formats a float with the given precision.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.3f%%", 100*v) }

// PctC formats a fraction as a coarse percentage (compliance etc.).
func PctC(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// I formats an int64.
func I(v int64) string { return fmt.Sprintf("%d", v) }

// Ms formats a stream-time value (ms by convention) in seconds when large.
func Ms(v float64) string {
	if v >= 10000 {
		return fmt.Sprintf("%.2fs", v/1000)
	}
	return fmt.Sprintf("%.0fms", v)
}
