package exp

import (
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/join"
	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/window"
)

// Scale shrinks experiment workloads: tuple counts are multiplied by it
// (floored at 1000). 1 is full scale; benches use ~0.05–0.2.
type Scale float64

// N applies the scale to a full-size tuple count.
func (s Scale) N(full int) int {
	if s <= 0 || s > 1 {
		s = 1
	}
	n := int(float64(full) * float64(s))
	if n < 1000 {
		n = 1000
	}
	return n
}

// warmupWindows dropped from quality/latency metrics in every experiment:
// adaptive handlers need a calibration phase.
const warmupWindows = 20

// AggOutcome is the measured outcome of one (workload, handler) execution.
type AggOutcome struct {
	Name       string
	Quality    metrics.QualityReport
	Latency    metrics.LatencyReport
	Handler    buffer.Stats
	Op         window.OpStats
	Disorder   stream.DisorderStats
	Trace      []core.KSample // adaptive handlers only
	Quality2   core.QualityStats
	WallSecs   float64
	TuplesIn   int
	Throughput float64 // tuples per wall-clock second
}

// RunAgg executes one windowed-aggregate pipeline over the pre-generated
// arrival-ordered tuples and measures quality against the supplied oracle.
func RunAgg(name string, tuples []stream.Tuple, oracle []window.Result,
	spec window.Spec, agg window.Factory, h buffer.Handler, theta float64) AggOutcome {
	return RunAggSource(name, stream.FromTuples(tuples), len(tuples), oracle, spec, agg, h, theta)
}

// RunAggSource is RunAgg over an arbitrary item source (e.g. a stream with
// interleaved punctuations); n is the data-tuple count for throughput.
func RunAggSource(name string, src stream.Source, n int, oracle []window.Result,
	spec window.Spec, agg window.Factory, h buffer.Handler, theta float64) AggOutcome {

	start := time.Now()
	rep, err := cq.New(src).
		Handle(h).
		Window(spec, agg).
		Run()
	if err != nil {
		panic(err) // experiment configurations are static; a failure is a bug
	}
	wall := time.Since(start).Seconds()

	out := AggOutcome{
		Name: name,
		Quality: metrics.Compare(rep.Results, oracle, metrics.CompareOpts{
			Theta: theta, SkipWarmup: warmupWindows, SkipEmptyOracle: true,
		}),
		// rep.Latency excludes flush-forced boundary results, whose
		// "latency" reflects the end of the stream, not the handler.
		Latency:    rep.Latency(warmupWindows),
		Handler:    rep.Handler,
		Op:         rep.Op,
		Disorder:   rep.Disorder,
		WallSecs:   wall,
		TuplesIn:   n,
		Throughput: float64(n) / wall,
	}
	if aq, ok := h.(*core.AQKSlack); ok {
		out.Trace = aq.Trace()
		out.Quality2 = aq.Quality()
	}
	return out
}

// SteadyK returns the mean slack over the second half of an adaptation
// trace (0 when the handler is not adaptive or never adapted).
func SteadyK(trace []core.KSample) float64 {
	if len(trace) == 0 {
		return 0
	}
	half := trace[len(trace)/2:]
	var sum float64
	for _, s := range half {
		sum += float64(s.K)
	}
	return sum / float64(len(half))
}

// Baselines returns the standard comparison set of non-adaptive handlers
// used across experiments. Slacks are expressed in stream-time units.
func Baselines(slacks []stream.Time) map[string]func() buffer.Handler {
	out := map[string]func() buffer.Handler{
		"none":     func() buffer.Handler { return buffer.Zero() },
		"maxslack": func() buffer.Handler { return buffer.NewMaxSlack() },
		"wm-p95":   func() buffer.Handler { return buffer.NewPercentile(0.95, 500) },
	}
	for _, k := range slacks {
		k := k
		out["kslack-"+Ms(float64(k))] = func() buffer.Handler { return buffer.NewKSlack(k) }
	}
	return out
}

// JoinOutcome is the measured outcome of one join execution.
type JoinOutcome struct {
	Name     string
	Pairs    metrics.PairReport
	Measured join.Stats
	Handler  buffer.Stats
	MeanLat  float64
	SteadyK  float64
}

// RunJoin executes one band-join pipeline over pre-merged, arrival-ordered
// tuples (Src-tagged) and measures recall against the oracle pair set.
// The handler is constructed via mk, which receives the join operator's
// stats accessor so adaptive handlers (core.NewAQJoin) can wire up their
// realized-recall feedback.
func RunJoin(name string, merged, left, right []stream.Tuple, jcfg join.Config,
	mk func(statsFn func() join.Stats) buffer.Handler) JoinOutcome {

	op := join.New(jcfg)
	h := mk(op.Stats)
	var rel []stream.Tuple
	var results []join.Result
	var now stream.Time
	for _, tp := range merged {
		now = tp.Arrival
		rel = h.Insert(stream.DataItem(tp), rel[:0])
		for _, r := range rel {
			results = op.Insert(join.Tagged{Tuple: r, Side: join.Side(r.Src)}, now, results)
		}
	}
	rel = h.Flush(rel[:0])
	for _, r := range rel {
		results = op.Insert(join.Tagged{Tuple: r, Side: join.Side(r.Src)}, now, results)
	}

	out := JoinOutcome{
		Name:     name,
		Pairs:    metrics.PairMetrics(join.PairSet(results), join.OraclePairs(jcfg, left, right)),
		Measured: op.Stats(),
		Handler:  h.Stats(),
	}
	if len(results) > 0 {
		var sum float64
		for _, r := range results {
			sum += float64(r.Latency())
		}
		out.MeanLat = sum / float64(len(results))
	}
	if aq, ok := h.(*core.AQJoin); ok {
		out.SteadyK = SteadyK(aq.Trace())
	} else {
		out.SteadyK = float64(h.K())
	}
	return out
}
