package join

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/stream"
)

func TestMWayTriangle(t *testing.T) {
	j := NewMWay(3, Config{Band: 10})
	var out []MResult
	feed := func(side int, ts stream.Time, seq uint64) {
		out = j.Insert(side, stream.Tuple{TS: ts, Arrival: ts, Seq: seq}, ts, out)
	}
	feed(0, 100, 0)
	feed(1, 105, 1)
	feed(2, 108, 2) // all pairwise within 10 -> one triple
	if len(out) != 1 {
		t.Fatalf("emitted %d combos, want 1: %v", len(out), out)
	}
	got := out[0]
	if got.Tuples[0].Seq != 0 || got.Tuples[1].Seq != 1 || got.Tuples[2].Seq != 2 {
		t.Fatalf("combo order wrong: %+v", got)
	}
}

func TestMWayPairwiseBandEnforced(t *testing.T) {
	j := NewMWay(3, Config{Band: 10})
	var out []MResult
	// 0 and 1 within band of the new tuple but not of each other.
	out = j.Insert(0, stream.Tuple{TS: 100, Seq: 0}, 100, out)
	out = j.Insert(1, stream.Tuple{TS: 118, Seq: 1}, 118, out)
	out = j.Insert(2, stream.Tuple{TS: 109, Seq: 2}, 119, out) // within 10 of both, but 100 vs 118 fails
	if len(out) != 0 {
		t.Fatalf("pairwise band violated: %v", out)
	}
}

func TestMWayEmitsOncePerCombination(t *testing.T) {
	j := NewMWay(2, Config{Band: 100})
	var out []MResult
	out = j.Insert(0, stream.Tuple{TS: 10, Seq: 0}, 10, out)
	out = j.Insert(1, stream.Tuple{TS: 12, Seq: 1}, 12, out)
	out = j.Insert(0, stream.Tuple{TS: 14, Seq: 2}, 14, out)
	// Combos: (0,1) and (2,1).
	if len(out) != 2 {
		t.Fatalf("emitted %d, want 2", len(out))
	}
	seen := map[string]bool{}
	for _, r := range out {
		k := r.Key()
		if seen[k] {
			t.Fatalf("duplicate combination %q", k)
		}
		seen[k] = true
	}
}

func TestMWayMatchesOracleOrderedInput(t *testing.T) {
	rng := stats.NewRNG(601)
	f := func(n uint8) bool {
		const m = 3
		streams := make([][]stream.Tuple, m)
		type ev struct {
			side int
			t    stream.Tuple
		}
		var evs []ev
		ts := stream.Time(0)
		count := int(n%60) + 3
		for i := 0; i < count; i++ {
			ts += stream.Time(rng.Intn(4))
			side := rng.Intn(m)
			tp := stream.Tuple{TS: ts, Arrival: ts, Seq: uint64(i), Key: uint64(rng.Intn(2))}
			streams[side] = append(streams[side], tp)
			evs = append(evs, ev{side, tp})
		}
		cfg := Config{Band: 8, KeyMatch: true}
		j := NewMWay(m, cfg)
		var out []MResult
		for _, e := range evs {
			out = j.Insert(e.side, e.t, e.t.Arrival, out)
		}
		got := make(map[string]struct{}, len(out))
		for _, r := range out {
			got[r.Key()] = struct{}{}
		}
		want := OracleMWay(m, cfg, streams)
		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if _, ok := got[k]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMWayStateBounded(t *testing.T) {
	j := NewMWay(3, Config{Band: 30})
	ts := stream.Time(0)
	for i := 0; i < 30000; i++ {
		ts++
		j.Insert(i%3, stream.Tuple{TS: ts, Seq: uint64(i)}, ts, nil)
	}
	if j.StateSize() > 500 {
		t.Fatalf("m-way state grew to %d", j.StateSize())
	}
}

func TestMWayPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"m=1":      func() { NewMWay(1, Config{Band: 1}) },
		"band":     func() { NewMWay(2, Config{Band: 0}) },
		"side oob": func() { NewMWay(2, Config{Band: 1}).Insert(5, stream.Tuple{}, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestOracleMWayPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched stream count did not panic")
		}
	}()
	OracleMWay(3, Config{Band: 1}, make([][]stream.Tuple, 2))
}

func TestMResultKeyDistinct(t *testing.T) {
	a := MResult{Tuples: []stream.Tuple{{Seq: 1}, {Seq: 2}}}
	b := MResult{Tuples: []stream.Tuple{{Seq: 2}, {Seq: 1}}}
	if a.Key() == b.Key() {
		t.Fatal("keys collide for different combos")
	}
}
