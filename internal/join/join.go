// Package join implements sliding-window stream joins: two streams (or m
// streams, see MWay) are joined on key equality and event-time proximity,
//
//	match(l, r)  ⇔  l.Key == r.Key  ∧  |l.TS − r.TS| ≤ Band
//
// over near-ordered input as produced by a disorder handler. A straggler
// that arrives after its partners expired from the join state loses those
// result pairs — the quality loss that quality-driven buffering (AQJoin in
// internal/core) bounds via a recall target.
//
// For online recall accounting the join can retain expired state for a
// grace period: a probe that matches only retained state counts the pairs
// that buffering would have saved (Missed), making realized recall
// observable without an oracle.
package join

import (
	"fmt"

	"repro/internal/stream"
)

// Side identifies one input stream of a two-way join.
type Side int

// The two sides of a binary join.
const (
	Left  Side = 0
	Right Side = 1
)

// Tagged is a tuple labelled with the stream it came from.
type Tagged struct {
	stream.Tuple
	Side Side
}

// Result is one emitted join pair; L is always the side-0 tuple.
type Result struct {
	L, R        stream.Tuple
	EmitArrival stream.Time
}

// Latency returns the emission lag behind the pair's completion point
// (the later of the two event timestamps).
func (r Result) Latency() stream.Time {
	ts := r.L.TS
	if r.R.TS > ts {
		ts = r.R.TS
	}
	return r.EmitArrival - ts
}

// Stats are cumulative join counters.
type Stats struct {
	TuplesIn     int64
	Emitted      int64 // pairs produced
	Missed       int64 // pairs lost to expired state (requires RetainFor > 0)
	MaxLiveState int   // high-water mark of retained live tuples (both sides)
}

// Recall returns the observed recall Emitted / (Emitted + Missed); 1 when
// nothing was missed (or nothing measurable).
func (s Stats) Recall() float64 {
	total := s.Emitted + s.Missed
	if total == 0 {
		return 1
	}
	return float64(s.Emitted) / float64(total)
}

// String renders the counters.
func (s Stats) String() string {
	return fmt.Sprintf("join{in=%d out=%d missed=%d recall=%.4f}", s.TuplesIn, s.Emitted, s.Missed, s.Recall())
}

// Config parameterizes a sliding-window join.
type Config struct {
	// Band is the maximum event-time distance between matching tuples.
	Band stream.Time
	// KeyMatch requires equal tuple keys; when false, all tuples share
	// one logical key (pure band join).
	KeyMatch bool
	// RetainFor keeps expired tuples for miss accounting this long past
	// their expiry (in stream time). 0 disables miss accounting.
	RetainFor stream.Time
}

func (c Config) storageKey(t stream.Tuple) uint64 {
	if c.KeyMatch {
		return t.Key
	}
	return 0
}

// sideState holds one input's tuples, bucketed by storage key. Entries are
// removed lazily on probe and by a periodic sweep.
type sideState struct {
	byKey map[uint64][]stream.Tuple
	count int
}

func newSideState() *sideState { return &sideState{byKey: make(map[uint64][]stream.Tuple)} }

// prune removes tuples with TS < cutoff from the key's bucket, returning
// the removed tuples.
func (s *sideState) prune(key uint64, cutoff stream.Time) []stream.Tuple {
	bucket := s.byKey[key]
	if len(bucket) == 0 {
		return nil
	}
	kept := bucket[:0]
	var removed []stream.Tuple
	for _, t := range bucket {
		if t.TS < cutoff {
			removed = append(removed, t)
		} else {
			kept = append(kept, t)
		}
	}
	s.count -= len(removed)
	if len(kept) == 0 {
		delete(s.byKey, key)
	} else {
		s.byKey[key] = kept
	}
	return removed
}

func (s *sideState) add(key uint64, t stream.Tuple) {
	s.byKey[key] = append(s.byKey[key], t)
	s.count++
}

// Join is a streaming two-way sliding-window join over near-ordered input.
type Join struct {
	cfg     Config
	live    [2]*sideState
	retired [2]*sideState
	clock   stream.Time
	started bool
	inserts int
	stats   Stats
}

// New returns a join operator. It panics if Band <= 0.
func New(cfg Config) *Join {
	if cfg.Band <= 0 {
		panic("join: band must be positive")
	}
	return &Join{
		cfg:     cfg,
		live:    [2]*sideState{newSideState(), newSideState()},
		retired: [2]*sideState{newSideState(), newSideState()},
	}
}

// Stats returns cumulative counters.
func (j *Join) Stats() Stats { return j.stats }

// StateSize returns the current number of live tuples held.
func (j *Join) StateSize() int { return j.live[0].count + j.live[1].count }

// Insert feeds one tagged tuple at arrival position now and appends any
// produced pairs to out.
func (j *Join) Insert(t Tagged, now stream.Time, out []Result) []Result {
	if t.Side != Left && t.Side != Right {
		panic(fmt.Sprintf("join: bad side %d", t.Side))
	}
	j.stats.TuplesIn++
	if !j.started || t.TS > j.clock {
		j.clock = t.TS
		j.started = true
	}
	key := j.cfg.storageKey(t.Tuple)
	other := 1 - t.Side

	cutoff := j.clock - j.cfg.Band
	// Lazily expire the probed bucket, optionally retiring for miss
	// accounting.
	expired := j.live[other].prune(key, cutoff)
	if j.cfg.RetainFor > 0 {
		for _, e := range expired {
			j.retired[other].add(key, e)
		}
		j.retired[other].prune(key, cutoff-j.cfg.RetainFor)
	}

	// Probe live state.
	for _, p := range j.live[other].byKey[key] {
		if within(t.Tuple, p, j.cfg.Band) {
			out = append(out, j.pair(t, p, now))
			j.stats.Emitted++
		}
	}
	// Probe retired state: pairs that fuller buffering would have found.
	if j.cfg.RetainFor > 0 {
		for _, p := range j.retired[other].byKey[key] {
			if within(t.Tuple, p, j.cfg.Band) {
				j.stats.Missed++
			}
		}
	}

	j.live[t.Side].add(key, t.Tuple)
	if s := j.StateSize(); s > j.stats.MaxLiveState {
		j.stats.MaxLiveState = s
	}
	j.inserts++
	if j.inserts%1024 == 0 {
		j.sweep()
	}
	return out
}

// within reports the band predicate.
func within(a, b stream.Tuple, band stream.Time) bool {
	d := a.TS - b.TS
	if d < 0 {
		d = -d
	}
	return d <= band
}

func (j *Join) pair(t Tagged, p stream.Tuple, now stream.Time) Result {
	if t.Side == Left {
		return Result{L: t.Tuple, R: p, EmitArrival: now}
	}
	return Result{L: p, R: t.Tuple, EmitArrival: now}
}

// sweep expires every bucket, bounding memory for keys that stopped
// receiving probes.
func (j *Join) sweep() {
	cutoff := j.clock - j.cfg.Band
	for side := 0; side < 2; side++ {
		for key := range j.live[side].byKey {
			expired := j.live[side].prune(key, cutoff)
			if j.cfg.RetainFor > 0 {
				for _, e := range expired {
					j.retired[side].add(key, e)
				}
			}
		}
		if j.cfg.RetainFor > 0 {
			for key := range j.retired[side].byKey {
				j.retired[side].prune(key, cutoff-j.cfg.RetainFor)
			}
		}
	}
}

// String names the operator.
func (j *Join) String() string {
	return fmt.Sprintf("join(band=%d key=%v)", j.cfg.Band, j.cfg.KeyMatch)
}
