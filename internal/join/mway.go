package join

import (
	"fmt"

	"repro/internal/stream"
)

// MResult is one emitted m-way join combination; Tuples[i] came from
// stream i.
type MResult struct {
	Tuples      []stream.Tuple
	EmitArrival stream.Time
}

// Key identifies the combination by its constituent sequence numbers, for
// set comparison against an oracle run.
func (r MResult) Key() string {
	key := make([]byte, 0, len(r.Tuples)*8)
	for _, t := range r.Tuples {
		key = append(key, byte(t.Seq), byte(t.Seq>>8), byte(t.Seq>>16), byte(t.Seq>>24),
			byte(t.Seq>>32), byte(t.Seq>>40), byte(t.Seq>>48), byte(t.Seq>>56))
	}
	return string(key)
}

// MWay is an m-way sliding-window join: it emits every combination of one
// tuple per stream whose members share a storage key and are pairwise
// within Band of each other. A combination is emitted exactly once, when
// its last-arriving member shows up (and every other member is still in
// live state).
type MWay struct {
	cfg     Config
	m       int
	live    []*sideState
	clock   stream.Time
	started bool
	inserts int
	stats   Stats
}

// NewMWay returns an m-way join over m >= 2 streams. It panics on m < 2 or
// a non-positive band.
func NewMWay(m int, cfg Config) *MWay {
	if m < 2 {
		panic("join: m-way join needs m >= 2")
	}
	if cfg.Band <= 0 {
		panic("join: band must be positive")
	}
	live := make([]*sideState, m)
	for i := range live {
		live[i] = newSideState()
	}
	return &MWay{cfg: cfg, m: m, live: live}
}

// M returns the number of input streams.
func (j *MWay) M() int { return j.m }

// Stats returns cumulative counters (Missed is not tracked for m-way).
func (j *MWay) Stats() Stats { return j.stats }

// StateSize returns the number of live tuples held across all sides.
func (j *MWay) StateSize() int {
	var n int
	for _, s := range j.live {
		n += s.count
	}
	return n
}

// Insert feeds one tuple from stream side at arrival position now,
// appending emitted combinations to out.
func (j *MWay) Insert(side int, t stream.Tuple, now stream.Time, out []MResult) []MResult {
	if side < 0 || side >= j.m {
		panic(fmt.Sprintf("join: side %d out of range [0,%d)", side, j.m))
	}
	j.stats.TuplesIn++
	if !j.started || t.TS > j.clock {
		j.clock = t.TS
		j.started = true
	}
	key := j.cfg.storageKey(t)
	cutoff := j.clock - j.cfg.Band
	for i := 0; i < j.m; i++ {
		if i != side {
			j.live[i].prune(key, cutoff)
		}
	}

	combo := make([]stream.Tuple, j.m)
	combo[side] = t
	out = j.enumerate(0, side, key, combo, now, out)

	j.live[side].add(key, t)
	j.inserts++
	if j.inserts%1024 == 0 {
		j.sweepAll()
	}
	return out
}

// enumerate recursively fills combo with one live tuple per remaining side,
// enforcing the pairwise band against all already-chosen members.
func (j *MWay) enumerate(side, newSide int, key uint64, combo []stream.Tuple, now stream.Time, out []MResult) []MResult {
	if side == j.m {
		res := MResult{Tuples: make([]stream.Tuple, j.m), EmitArrival: now}
		copy(res.Tuples, combo)
		j.stats.Emitted++
		return append(out, res)
	}
	if side == newSide {
		return j.enumerate(side+1, newSide, key, combo, now, out)
	}
	for _, cand := range j.live[side].byKey[key] {
		ok := true
		for i := 0; i < side; i++ {
			if i != newSide && !within(cand, combo[i], j.cfg.Band) {
				ok = false
				break
			}
		}
		if ok && within(cand, combo[newSide], j.cfg.Band) {
			combo[side] = cand
			out = j.enumerate(side+1, newSide, key, combo, now, out)
		}
	}
	return out
}

func (j *MWay) sweepAll() {
	cutoff := j.clock - j.cfg.Band
	for _, s := range j.live {
		for key := range s.byKey {
			s.prune(key, cutoff)
		}
	}
}

// String names the operator.
func (j *MWay) String() string {
	return fmt.Sprintf("mway-join(m=%d band=%d key=%v)", j.m, j.cfg.Band, j.cfg.KeyMatch)
}

// OracleMWay computes the exact m-way combination set by brute force over
// per-key buckets; it is exponential in m and intended for tests and
// moderate experiment sizes.
func OracleMWay(m int, cfg Config, streams [][]stream.Tuple) map[string]struct{} {
	if len(streams) != m {
		panic("join: OracleMWay needs one slice per stream")
	}
	buckets := make([]map[uint64][]stream.Tuple, m)
	for i, s := range streams {
		buckets[i] = bucket(cfg, s)
	}
	out := make(map[string]struct{})
	combo := make([]stream.Tuple, m)
	var rec func(side int, key uint64)
	rec = func(side int, key uint64) {
		if side == m {
			out[MResult{Tuples: combo}.Key()] = struct{}{}
			return
		}
		for _, cand := range buckets[side][key] {
			ok := true
			for i := 0; i < side; i++ {
				if !within(cand, combo[i], cfg.Band) {
					ok = false
					break
				}
			}
			if ok {
				combo[side] = cand
				rec(side+1, key)
			}
		}
	}
	for key := range buckets[0] {
		rec(0, key)
	}
	return out
}
