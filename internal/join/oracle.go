package join

import (
	"sort"

	"repro/internal/metrics"
	"repro/internal/stream"
)

// OraclePairs computes the exact set of matching pairs between two tuple
// slices under the given configuration: every (l, r) with equal storage
// keys and |l.TS − r.TS| <= Band. It runs in O(n log n + output) via a
// per-key two-pointer band scan and is the ground truth for recall and
// precision.
func OraclePairs(cfg Config, left, right []stream.Tuple) map[metrics.Pair]struct{} {
	byKeyL := bucket(cfg, left)
	byKeyR := bucket(cfg, right)
	out := make(map[metrics.Pair]struct{})
	for key, ls := range byKeyL {
		rs, ok := byKeyR[key]
		if !ok {
			continue
		}
		lo := 0
		for _, l := range ls {
			// Advance lo past right tuples below the band.
			for lo < len(rs) && rs[lo].TS < l.TS-cfg.Band {
				lo++
			}
			for i := lo; i < len(rs) && rs[i].TS <= l.TS+cfg.Band; i++ {
				out[metrics.Pair{Left: l.Seq, Right: rs[i].Seq}] = struct{}{}
			}
		}
	}
	return out
}

func bucket(cfg Config, ts []stream.Tuple) map[uint64][]stream.Tuple {
	m := make(map[uint64][]stream.Tuple)
	for _, t := range ts {
		k := cfg.storageKey(t)
		m[k] = append(m[k], t)
	}
	for k := range m {
		s := m[k]
		sort.Slice(s, func(i, j int) bool { return s[i].TS < s[j].TS })
	}
	return m
}

// PairSet converts emitted join results into the pair-set form consumed by
// metrics.PairMetrics.
func PairSet(results []Result) map[metrics.Pair]struct{} {
	out := make(map[metrics.Pair]struct{}, len(results))
	for _, r := range results {
		out[metrics.Pair{Left: r.L.Seq, Right: r.R.Seq}] = struct{}{}
	}
	return out
}
