package join

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/stream"
)

func lt(ts stream.Time, seq uint64, key uint64) Tagged {
	return Tagged{Tuple: stream.Tuple{TS: ts, Arrival: ts, Seq: seq, Key: key}, Side: Left}
}

func rt(ts stream.Time, seq uint64, key uint64) Tagged {
	return Tagged{Tuple: stream.Tuple{TS: ts, Arrival: ts, Seq: seq, Key: key}, Side: Right}
}

func runJoin(j *Join, in []Tagged) []Result {
	var out []Result
	for _, t := range in {
		out = j.Insert(t, t.Arrival, out)
	}
	return out
}

func TestJoinBasicBandMatch(t *testing.T) {
	j := New(Config{Band: 10})
	out := runJoin(j, []Tagged{lt(100, 0, 0), rt(105, 0, 0), rt(150, 1, 0), lt(155, 1, 0)})
	if len(out) != 2 {
		t.Fatalf("emitted %d pairs, want 2: %v", len(out), out)
	}
	if out[0].L.Seq != 0 || out[0].R.Seq != 0 {
		t.Fatalf("pair 0: %+v", out[0])
	}
	if out[1].L.Seq != 1 || out[1].R.Seq != 1 {
		t.Fatalf("pair 1: %+v", out[1])
	}
}

func TestJoinBandBoundary(t *testing.T) {
	j := New(Config{Band: 10})
	// Exactly Band apart matches; Band+1 does not.
	out := runJoin(j, []Tagged{lt(100, 0, 0), rt(110, 0, 0), lt(200, 1, 0), rt(211, 1, 0)})
	if len(out) != 1 {
		t.Fatalf("emitted %d pairs, want 1 (boundary inclusive): %v", len(out), out)
	}
}

func TestJoinKeyMatch(t *testing.T) {
	j := New(Config{Band: 10, KeyMatch: true})
	out := runJoin(j, []Tagged{lt(100, 0, 1), rt(101, 0, 2), rt(102, 1, 1)})
	if len(out) != 1 {
		t.Fatalf("key-matched join emitted %d, want 1", len(out))
	}
	if out[0].R.Key != 1 {
		t.Fatalf("joined across keys: %+v", out[0])
	}
}

func TestJoinLatency(t *testing.T) {
	j := New(Config{Band: 10})
	var out []Result
	out = j.Insert(lt(100, 0, 0), 100, out)
	out = j.Insert(Tagged{Tuple: stream.Tuple{TS: 105, Arrival: 130, Seq: 0}, Side: Right}, 130, out)
	if len(out) != 1 {
		t.Fatalf("no pair: %v", out)
	}
	if got := out[0].Latency(); got != 25 { // 130 - max(100,105)
		t.Fatalf("latency = %d, want 25", got)
	}
}

func TestJoinExpiry(t *testing.T) {
	j := New(Config{Band: 10})
	var out []Result
	out = j.Insert(lt(100, 0, 0), 100, out)
	out = j.Insert(rt(200, 1, 0), 200, out) // advances clock; left@100 expired
	out = j.Insert(rt(105, 2, 0), 201, out) // straggler: partner gone
	if len(out) != 0 {
		t.Fatalf("expired state still matched: %v", out)
	}
}

func TestJoinMissAccounting(t *testing.T) {
	j := New(Config{Band: 10, RetainFor: 1000})
	var out []Result
	out = j.Insert(lt(100, 0, 0), 100, out)
	out = j.Insert(rt(200, 1, 0), 200, out)
	out = j.Insert(rt(105, 2, 0), 201, out) // would have matched left@100
	if len(out) != 0 {
		t.Fatalf("unexpected pairs: %v", out)
	}
	s := j.Stats()
	if s.Missed != 1 {
		t.Fatalf("Missed = %d, want 1 (%v)", s.Missed, s)
	}
	if got := s.Recall(); got != 0 {
		t.Fatalf("Recall = %v, want 0", got)
	}
}

func TestJoinRecallPerfectWhenOrdered(t *testing.T) {
	// Fully ordered interleaved input loses nothing.
	rng := stats.NewRNG(501)
	var in []Tagged
	ts := stream.Time(0)
	for i := 0; i < 2000; i++ {
		ts += stream.Time(rng.Intn(5))
		tg := Tagged{Tuple: stream.Tuple{TS: ts, Arrival: ts, Seq: uint64(i)}, Side: Side(i % 2)}
		in = append(in, tg)
	}
	j := New(Config{Band: 8, RetainFor: 500})
	runJoin(j, in)
	if s := j.Stats(); s.Missed != 0 || s.Recall() != 1 {
		t.Fatalf("ordered input missed pairs: %v", s)
	}
}

func TestJoinMatchesOracleOnOrderedInput(t *testing.T) {
	rng := stats.NewRNG(503)
	f := func(n uint8) bool {
		var left, right []stream.Tuple
		var in []Tagged
		ts := stream.Time(0)
		count := int(n%100) + 2
		for i := 0; i < count; i++ {
			ts += stream.Time(rng.Intn(6))
			tp := stream.Tuple{TS: ts, Arrival: ts, Seq: uint64(i), Key: uint64(rng.Intn(3))}
			side := Side(rng.Intn(2))
			if side == Left {
				left = append(left, tp)
			} else {
				right = append(right, tp)
			}
			in = append(in, Tagged{Tuple: tp, Side: side})
		}
		cfg := Config{Band: 10, KeyMatch: true}
		j := New(cfg)
		emitted := PairSet(runJoin(j, in))
		oracle := OraclePairs(cfg, left, right)
		rep := metrics.PairMetrics(emitted, oracle)
		return rep.Recall == 1 && rep.Precision == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinStateBounded(t *testing.T) {
	j := New(Config{Band: 50})
	ts := stream.Time(0)
	for i := 0; i < 50000; i++ {
		ts += 1
		j.Insert(Tagged{Tuple: stream.Tuple{TS: ts, Arrival: ts, Seq: uint64(i)}, Side: Side(i % 2)}, ts, nil)
	}
	// Band 50 with 1 tuple/unit: state should stay near ~100, never grow
	// unboundedly.
	if j.StateSize() > 500 {
		t.Fatalf("live state grew to %d", j.StateSize())
	}
	if j.Stats().MaxLiveState > 1000 {
		t.Fatalf("max live state %d", j.Stats().MaxLiveState)
	}
}

func TestJoinPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("band 0 did not panic")
			}
		}()
		New(Config{Band: 0})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("bad side did not panic")
			}
		}()
		j := New(Config{Band: 1})
		j.Insert(Tagged{Side: 5}, 0, nil)
	}()
}

func TestJoinStrings(t *testing.T) {
	j := New(Config{Band: 3, KeyMatch: true})
	if s := j.String(); !strings.Contains(s, "band=3") {
		t.Fatalf("String = %q", s)
	}
	if s := j.Stats().String(); !strings.Contains(s, "join{") {
		t.Fatalf("Stats.String = %q", s)
	}
}

func TestOraclePairsBruteForce(t *testing.T) {
	rng := stats.NewRNG(507)
	f := func(n uint8) bool {
		count := int(n%60) + 1
		var left, right []stream.Tuple
		for i := 0; i < count; i++ {
			tp := stream.Tuple{TS: stream.Time(rng.Intn(100)), Seq: uint64(i), Key: uint64(rng.Intn(2))}
			if rng.Intn(2) == 0 {
				left = append(left, tp)
			} else {
				right = append(right, tp)
			}
		}
		cfg := Config{Band: 7, KeyMatch: true}
		got := OraclePairs(cfg, left, right)
		want := make(map[metrics.Pair]struct{})
		for _, l := range left {
			for _, r := range right {
				if l.Key == r.Key && within(l, r, cfg.Band) {
					want[metrics.Pair{Left: l.Seq, Right: r.Seq}] = struct{}{}
				}
			}
		}
		if len(got) != len(want) {
			return false
		}
		for p := range want {
			if _, ok := got[p]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
