package fanout

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/stream"
)

// mkItems builds n data items with dense seq/ts.
func mkItems(start, n int) []stream.Item {
	out := make([]stream.Item, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, stream.DataItem(stream.Tuple{
			TS: stream.Time(start + i), Arrival: stream.Time(start + i),
			Seq: uint64(start + i), Value: float64(start + i),
		}))
	}
	return out
}

// drain consumes a sub through its ErrSource adapter, returning the
// delivered data values and the terminal error.
func drain(ctx context.Context, s *Sub) ([]float64, error) {
	src := s.ErrSource(ctx)
	var vals []float64
	for {
		it, ok, err := src.NextErr()
		if err != nil {
			return vals, err
		}
		if !ok {
			return vals, nil
		}
		if !it.Heartbeat {
			vals = append(vals, it.Tuple.Value)
		}
	}
}

func TestBlockSubscribersSeeEverything(t *testing.T) {
	const total, batch = 8192, 64
	b := New(Options{Ring: 8, BatchCap: batch})
	const m = 4
	subs := make([]*Sub, m)
	for i := range subs {
		subs[i] = b.Subscribe(fmt.Sprintf("q%d", i), Block)
	}

	var wg sync.WaitGroup
	got := make([][]float64, m)
	errs := make([]error, m)
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = drain(context.Background(), subs[i])
		}(i)
	}

	for off := 0; off < total; off += batch {
		items := append(b.Get(), mkItems(off, batch)...)
		if err := b.Publish(context.Background(), items); err != nil {
			t.Fatalf("publish: %v", err)
		}
	}
	b.Close()
	wg.Wait()

	for i := range subs {
		if errs[i] != nil {
			t.Fatalf("sub %d: %v", i, errs[i])
		}
		if len(got[i]) != total {
			t.Fatalf("sub %d: got %d of %d tuples", i, len(got[i]), total)
		}
		for j, v := range got[i] {
			if v != float64(j) {
				t.Fatalf("sub %d: item %d = %g, want %d", i, j, v, j)
			}
		}
		if subs[i].Shed() != 0 {
			t.Fatalf("sub %d: Block consumer shed %d", i, subs[i].Shed())
		}
	}
	if b.Published() != total/batch {
		t.Fatalf("published = %d, want %d", b.Published(), total/batch)
	}
	if b.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", b.Dropped())
	}
}

func TestShedOldestAccountingIsExact(t *testing.T) {
	const total, batch = 4096, 16
	b := New(Options{Ring: 4, BatchCap: batch})
	fast := b.Subscribe("fast", Block)
	slow := b.Subscribe("slow", ShedOldest)

	var wg sync.WaitGroup
	var fastGot, slowGot []float64
	var slowErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		fastGot, _ = drain(context.Background(), fast)
	}()
	// The slow consumer releases batches only every few acquisitions by
	// consuming through NextBatch with a stall: simplest is to drain it
	// normally but give the producer a head start per batch — with a
	// 4-slot ring and a goroutine scheduled at the runtime's whim, laps
	// are effectively guaranteed at this volume. The invariant under
	// test is exactness, not a specific shed count.
	go func() {
		defer wg.Done()
		ctx := context.Background()
		for {
			items, seq, ok, err := slow.NextBatch(ctx)
			if err != nil {
				slowErr = err
				return
			}
			if !ok {
				return
			}
			for _, it := range items {
				if !it.Heartbeat {
					slowGot = append(slowGot, it.Tuple.Value)
				}
			}
			slow.Release(seq)
		}
	}()

	for off := 0; off < total; off += batch {
		items := append(b.Get(), mkItems(off, batch)...)
		if err := b.Publish(context.Background(), items); err != nil {
			t.Fatalf("publish: %v", err)
		}
	}
	b.Close()
	wg.Wait()

	if slowErr != nil {
		t.Fatalf("slow: %v", slowErr)
	}
	if len(fastGot) != total {
		t.Fatalf("fast consumer got %d of %d", len(fastGot), total)
	}
	if got, shed := int64(len(slowGot)), slow.Shed(); got+shed != total {
		t.Fatalf("slow consumer: consumed %d + shed %d != published %d", got, shed, total)
	}
	if b.Dropped() != slow.Shed() {
		t.Fatalf("Dropped = %d, sub shed = %d", b.Dropped(), slow.Shed())
	}
	// Delivered values must still be a subsequence in order (no
	// duplicates, no reordering — laps skip forward only).
	last := -1.0
	for _, v := range slowGot {
		if v <= last {
			t.Fatalf("slow consumer saw %g after %g (reorder or duplicate)", v, last)
		}
		last = v
	}
}

func TestFailPropagatesAfterDrain(t *testing.T) {
	b := New(Options{Ring: 8})
	s := b.Subscribe("q", Block)
	if err := b.Publish(context.Background(), append(b.Get(), mkItems(0, 5)...)); err != nil {
		t.Fatal(err)
	}
	cause := errors.New("upstream gone")
	b.Fail(cause)

	vals, err := drain(context.Background(), s)
	if len(vals) != 5 {
		t.Fatalf("got %d tuples before the failure, want 5", len(vals))
	}
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want %v", err, cause)
	}
	// The terminal error is sticky.
	if _, _, _, err := s.NextBatch(context.Background()); !errors.Is(err, cause) {
		t.Fatalf("NextBatch after failure = %v, want %v", err, cause)
	}
}

func TestPublishAfterCloseFails(t *testing.T) {
	b := New(Options{})
	b.Close()
	if err := b.Publish(context.Background(), mkItems(0, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestUnsubscribeUnblocksProducer(t *testing.T) {
	b := New(Options{Ring: 2})
	s := b.Subscribe("stuck", Block)
	live := b.Subscribe("live", Block)

	done := make(chan []float64)
	go func() {
		vals, _ := drain(context.Background(), live)
		done <- vals
	}()

	// Fill the ring past the stuck consumer, then unsubscribe it: the
	// producer must make progress without it.
	ctx := context.Background()
	if err := b.Publish(ctx, append(b.Get(), mkItems(0, 4)...)); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(ctx, append(b.Get(), mkItems(4, 4)...)); err != nil {
		t.Fatal(err)
	}
	s.Unsubscribe()
	for off := 8; off < 64; off += 4 {
		if err := b.Publish(ctx, append(b.Get(), mkItems(off, 4)...)); err != nil {
			t.Fatalf("publish after unsubscribe: %v", err)
		}
	}
	b.Close()
	if vals := <-done; len(vals) != 64 {
		t.Fatalf("live consumer got %d of 64", len(vals))
	}
}

func TestProducerCancelWhileBlocked(t *testing.T) {
	b := New(Options{Ring: 2})
	b.Subscribe("absent", Block) // never reads
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	var err error
	for off := 0; off < 1024; off++ {
		if err = b.Publish(ctx, append(b.Get(), mkItems(off, 1)...)); err != nil {
			break
		}
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestConsumerCancelWhileWaiting(t *testing.T) {
	b := New(Options{})
	s := b.Subscribe("q", Block)
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	_, _, _, err := s.NextBatch(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSubscribeAfterPublishPanics(t *testing.T) {
	b := New(Options{})
	if err := b.Publish(context.Background(), mkItems(0, 1)); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Subscribe after Publish did not panic")
		}
	}()
	b.Subscribe("late", Block)
}

func TestSubscribeLateJoinsAtFrontier(t *testing.T) {
	b := New(Options{Ring: 8})
	// Publish a prefix the late subscriber must never see or be charged
	// for.
	for i := 0; i < 5; i++ {
		if err := b.Publish(context.Background(), mkItems(i*10, 10)); err != nil {
			t.Fatal(err)
		}
	}
	s := b.SubscribeLate("runtime-q", ShedOldest)
	if got := s.Shed(); got != 0 {
		t.Fatalf("late sub shed baseline = %d, want 0", got)
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("late sub pending = %d, want 0", got)
	}
	errc := make(chan error, 1)
	valsc := make(chan []float64, 1)
	go func() {
		vals, err := drain(context.Background(), s)
		valsc <- vals
		errc <- err
	}()
	if err := b.Publish(context.Background(), mkItems(50, 10)); err != nil {
		t.Fatal(err)
	}
	b.Close()
	vals, err := <-valsc, <-errc
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 10 || vals[0] != 50 || vals[9] != 59 {
		t.Fatalf("late sub saw %v, want exactly the post-subscribe batch 50..59", vals)
	}
	if s.Shed() != 0 {
		t.Fatalf("late sub shed = %d after drain, want 0 (prefix is not a loss)", s.Shed())
	}
}

func TestSubscribeLateOnClosedRing(t *testing.T) {
	b := New(Options{Ring: 8})
	if err := b.Publish(context.Background(), mkItems(0, 10)); err != nil {
		t.Fatal(err)
	}
	b.Close()
	s := b.SubscribeLate("after-eos", ShedOldest)
	vals, err := drain(context.Background(), s)
	if err != nil || len(vals) != 0 {
		t.Fatalf("late sub on closed ring: vals=%v err=%v, want clean empty end", vals, err)
	}
	if s.Shed() != 0 {
		t.Fatalf("shed = %d, want 0", s.Shed())
	}
}

func TestSubscribeLateOnFailedRing(t *testing.T) {
	b := New(Options{Ring: 8})
	boom := errors.New("upstream died")
	b.Fail(boom)
	s := b.SubscribeLate("after-fail", Block)
	if _, err := drain(context.Background(), s); !errors.Is(err, boom) {
		t.Fatalf("late sub on failed ring: err=%v, want %v", err, boom)
	}
}

func TestPumpDrivesRingFromSource(t *testing.T) {
	const total = 1000
	items := mkItems(0, total)
	// Interleave heartbeats so the forced-ship path runs.
	withHB := make([]stream.Item, 0, total+total/100)
	for i, it := range items {
		withHB = append(withHB, it)
		if i%100 == 99 {
			withHB = append(withHB, stream.HeartbeatItem(stream.Time(i)))
		}
	}
	b := New(Options{Ring: 16})
	s := b.Subscribe("q", Block)
	errc := make(chan error, 1)
	go func() { errc <- b.Pump(context.Background(), stream.AsErrSource(stream.NewSliceSource(withHB)), 64) }()
	vals, err := drain(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("pump: %v", err)
	}
	if len(vals) != total {
		t.Fatalf("got %d of %d tuples", len(vals), total)
	}
}

func TestPumpFailsEveryConsumerOnSourceError(t *testing.T) {
	cause := errors.New("flaky")
	n := 0
	src := stream.ErrFuncSource(func() (stream.Item, bool, error) {
		if n >= 10 {
			return stream.Item{}, false, cause
		}
		it := mkItems(n, 1)[0]
		n++
		return it, true, nil
	})
	b := New(Options{})
	s1 := b.Subscribe("a", Block)
	s2 := b.Subscribe("b", Block)
	errc := make(chan error, 1)
	go func() { errc <- b.Pump(context.Background(), src, 4) }()
	for _, s := range []*Sub{s1, s2} {
		vals, err := drain(context.Background(), s)
		if !errors.Is(err, cause) {
			t.Fatalf("sub %s: err = %v, want %v", s.Name(), err, cause)
		}
		if len(vals) != 8 {
			// 10 items at batch 4: two full batches shipped; the partial
			// third dies with the failure (Fail does not flush it —
			// delivery of a prefix is all the contract promises).
			t.Fatalf("sub %s: got %d tuples, want 8", s.Name(), len(vals))
		}
	}
	if !errors.Is(<-errc, cause) {
		t.Fatal("pump did not return the source error")
	}
}

func TestLagAndPendingGauges(t *testing.T) {
	b := New(Options{Ring: 8})
	s := b.Subscribe("q", Block)
	ctx := context.Background()
	for off := 0; off < 12; off += 4 {
		if err := b.Publish(ctx, append(b.Get(), mkItems(off, 4)...)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Lag(); got != 3 {
		t.Fatalf("Lag = %d, want 3", got)
	}
	if got := s.Pending(); got != 12 {
		t.Fatalf("Pending = %d, want 12", got)
	}
	items, seq, ok, err := s.NextBatch(ctx)
	if err != nil || !ok || len(items) != 4 {
		t.Fatalf("NextBatch = %v %v %v", items, ok, err)
	}
	s.Release(seq)
	if got := s.Lag(); got != 2 {
		t.Fatalf("Lag after release = %d, want 2", got)
	}
	if got := s.Pending(); got != 8 {
		t.Fatalf("Pending after release = %d, want 8", got)
	}
}

func TestPolicyString(t *testing.T) {
	if Block.String() != "block" || ShedOldest.String() != "shed-oldest" {
		t.Fatal("policy names changed")
	}
}
