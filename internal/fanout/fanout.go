// Package fanout is the shared-source ingest substrate: one producer
// publishes pooled batches of stream items into a sequenced broadcast
// ring, and many consumers — one per continuous query — read the same
// batches through per-consumer cursors. N queries on one stream pay one
// ingest path (generation, decoration, chaos/retry handling all happen
// once, on the producer side) instead of N.
//
// The design is disruptor-style:
//
//   - The ring is a power-of-two array of slots, each an atomic pointer
//     to an immutable published batch. Batch seq determines its slot
//     (seq & mask); publishing is one atomic store plus a wake-up.
//   - Every consumer owns a cursor: the sequence it will read next.
//     Reading is one atomic load of the slot plus a stamp check; no
//     locks, no per-consumer channels, no copies — consumers borrow the
//     published batch until they Release it.
//   - Batches are recycled through a sync.Pool once every live
//     consumer's cursor has passed them, so a steady-state ring
//     allocates no transport memory.
//
// Slow consumers choose a policy at Subscribe time. Block consumers
// apply backpressure: the producer waits before overwriting a slot a
// Block consumer has not released, so they see every batch — their
// output is byte-identical to a standalone run over the same stream
// (the DST fan-out oracle enforces exactly this). ShedOldest consumers
// never slow the producer: when one is lapped, its next read skips to
// the oldest batch still in the ring and the skipped data tuples are
// counted as shed — each batch carries the cumulative data-tuple count,
// so the accounting is exact and feeds AggReport.Shed like the engine's
// own overload sheds.
package fanout

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs/tracez"
	"repro/internal/stream"
)

// Policy says what happens to a consumer that falls a full ring behind
// the producer.
type Policy int

const (
	// Block makes the producer wait for the consumer: no batch is ever
	// overwritten before the consumer releases it, so the consumer sees
	// the complete stream (lossless, backpressuring).
	Block Policy = iota
	// ShedOldest lets the producer lap the consumer: overwritten batches
	// are skipped on the consumer's next read and their data tuples are
	// counted on Sub.Shed. The producer never blocks on such a consumer.
	ShedOldest
)

// String names the policy.
func (p Policy) String() string {
	if p == ShedOldest {
		return "shed-oldest"
	}
	return "block"
}

// ErrClosed is returned by Publish after Close or Fail.
var ErrClosed = errors.New("fanout: broadcast closed")

// batch is one published ring entry. Batches are immutable once stored:
// the producer stamps a fresh one per Publish and consumers only read,
// so slot pointers are the only shared mutable state.
type batch struct {
	seq   int64 // ring sequence, dense from 0
	items []stream.Item
	n     int64            // data tuples in items (heartbeats excluded)
	cum   int64            // cumulative data tuples through this batch, inclusive
	eos   bool             // end-of-stream marker (items empty)
	err   error            // producer failure (items empty, eos set)
	prov  stream.BatchProv // wire provenance (zero when the producer has none)
}

// signal is a broadcast parking spot: waiters grab the current epoch
// channel and sleep on it; wakers swap in a fresh channel and close the
// old one. The seq-cst waiters counter lets the fast path skip the
// swap+close entirely when nobody is parked (the Dekker pattern: a
// waiter increments before re-checking its condition, a waker updates
// state before loading the counter, so one of them always sees the
// other).
type signal struct {
	ch      atomic.Pointer[chan struct{}]
	waiters atomic.Int64
}

func newSignal() *signal {
	s := &signal{}
	ch := make(chan struct{})
	s.ch.Store(&ch)
	return s
}

// get returns the channel a prospective waiter should sleep on. Call
// before re-checking the wait condition.
func (s *signal) get() chan struct{} { return *s.ch.Load() }

// wake unparks every current waiter. State changes that satisfy wait
// conditions must be published before the call.
func (s *signal) wake() {
	if s.waiters.Load() == 0 {
		return
	}
	next := make(chan struct{})
	old := s.ch.Swap(&next)
	close(*old)
}

// await parks until ch is closed or ctx/stop fires. The caller must
// have re-checked its condition after get and after incrementing
// waiters; await only sleeps.
func (s *signal) await(ctx context.Context, ch chan struct{}) error {
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Options configures a Broadcast.
type Options struct {
	// Ring is the ring capacity in batches, rounded up to a power of
	// two; <= 0 picks 64. A Block consumer may hold the producer back by
	// at most Ring batches, and a ShedOldest consumer can lag at most
	// Ring batches before losing data.
	Ring int
	// BatchCap seeds the pooled item slices (the producer may publish
	// batches of any length); <= 0 picks 64.
	BatchCap int
}

// Broadcast is the single-producer multi-consumer ring. Publish, Close
// and Fail must be called from one goroutine (the producer); Subscribe
// may be called from anywhere but only before the first Publish;
// consumer methods are safe concurrently with the producer.
type Broadcast struct {
	mask  int64
	slots []atomic.Pointer[batch]

	next   int64 // producer-owned: next sequence to publish
	cum    int64 // producer-owned: cumulative data tuples published
	closed bool  // producer-owned: Close/Fail happened

	// pubCum mirrors cum for concurrent readers (queue-depth gauges).
	pubCum atomic.Int64
	// pubSeq is the highest published sequence + 1 (0 = nothing yet).
	pubSeq atomic.Int64

	published atomic.Int64 // batches published (excluding the final marker)
	dropped   atomic.Int64 // data tuples shed across all ShedOldest consumers

	pool sync.Pool // recycled []stream.Item

	mu     sync.Mutex
	subs   []*Sub
	sealed bool // first Publish happened; Subscribe now panics

	pub  *signal // consumers wait here for new batches
	cons *signal // the producer waits here for cursor progress

	tracer *tracez.Tracer
}

// New builds a broadcast ring.
func New(o Options) *Broadcast {
	ring := o.Ring
	if ring <= 0 {
		ring = 64
	}
	n := 1
	for n < ring {
		n <<= 1
	}
	bcap := o.BatchCap
	if bcap <= 0 {
		bcap = 64
	}
	b := &Broadcast{
		mask:  int64(n - 1),
		slots: make([]atomic.Pointer[batch], n),
		pub:   newSignal(),
		cons:  newSignal(),
	}
	b.pool.New = func() any { return make([]stream.Item, 0, bcap) }
	return b
}

// Trace mirrors publish events into the tracer's flight recorder
// (KindFanoutPublish, stamped with the batch's last stream-time
// position). Call before the first Publish.
func (b *Broadcast) Trace(tr *tracez.Tracer) { b.tracer = tr }

// Subscribe registers a consumer under the given policy. It must be
// called before the first Publish — a late subscriber would miss a
// prefix of the stream, which silently breaks the byte-equivalence
// contract, so the ring refuses instead.
func (b *Broadcast) Subscribe(name string, p Policy) *Sub {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.sealed {
		panic("fanout: Subscribe after first Publish")
	}
	s := &Sub{b: b, name: name, policy: p}
	b.subs = append(b.subs, s)
	return s
}

// SubscribeLate registers a consumer at the ring's current frontier: it
// sees only batches published after the call, with a zero shed baseline
// (the prefix it never saw is not counted as lost). This is the attach
// point for queries registered at runtime — the byte-equivalence
// contract Subscribe protects cannot hold for a consumer that asked to
// join mid-stream, so it is deliberately not offered. Safe to call
// concurrently with the producer; on an already-closed ring the
// subscriber observes an immediate clean end (or the producer's
// terminal error).
func (b *Broadcast) SubscribeLate(name string, p Policy) *Sub {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := &Sub{b: b, name: name, policy: p}
	// Pin the frontier batch to seed the shed baseline. pubSeq and the
	// slot are published by separate atomics, so the slot may already
	// hold a later lap of the ring; retry at the fresh frontier.
	var seq int64
	var last *batch
	for {
		seq = b.pubSeq.Load()
		if seq == 0 {
			break
		}
		if bt := b.slots[(seq-1)&b.mask].Load(); bt != nil && bt.seq == seq-1 {
			last = bt
			break
		}
	}
	if last != nil {
		s.lastCum = last.cum
		if last.eos {
			// The stream already ended: point the consumer back at the
			// marker so it sees the clean end (or terminal error) instead
			// of parking on a slot that will never be published.
			seq--
		}
	}
	s.acq = seq
	s.cursor.Store(seq)
	s.consumedFloor.Store(s.lastCum)
	b.subs = append(b.subs, s)
	return s
}

// Get returns a pooled item slice (length 0) for the producer to fill
// before Publish. Publishing hands ownership to the ring; the slice
// comes back to the pool once every live consumer has released it.
func (b *Broadcast) Get() []stream.Item {
	return b.pool.Get().([]stream.Item)[:0]
}

// minCursor returns the smallest next-to-read sequence over live
// consumers with the given policy filter (all == true ignores policy).
// Dead (unsubscribed) consumers never hold the ring back.
func (b *Broadcast) minCursor(blockOnly bool) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	min := int64(1<<62 - 1)
	for _, s := range b.subs {
		if s.dead.Load() {
			continue
		}
		if blockOnly && s.policy != Block {
			continue
		}
		if c := s.cursor.Load(); c < min {
			min = c
		}
	}
	return min
}

// Publish stamps items as the next batch and stores it in the ring,
// waiting (under ctx) for Block consumers when the target slot is still
// unreleased. On success the ring owns items. Returns ErrClosed after
// Close/Fail, ctx.Err() when cancelled while waiting.
func (b *Broadcast) Publish(ctx context.Context, items []stream.Item) error {
	return b.publish(ctx, items, stream.BatchProv{}, false, nil)
}

// PublishProv is Publish with wire provenance attached: consumers that
// read through NextBatchProv see the batch's client-stamped id and send
// time alongside the items.
func (b *Broadcast) PublishProv(ctx context.Context, items []stream.Item, prov stream.BatchProv) error {
	return b.publish(ctx, items, prov, false, nil)
}

// Close publishes the end-of-stream marker: every consumer drains the
// remaining batches and then sees a clean end. Idempotent only in the
// sense that the producer must not publish afterwards.
func (b *Broadcast) Close() { b.publish(context.Background(), nil, stream.BatchProv{}, true, nil) }

// Fail publishes a terminal producer error: consumers drain the
// remaining batches and then receive err. Use it when the upstream
// source fails so every subscriber aborts with the same cause.
func (b *Broadcast) Fail(err error) {
	b.publish(context.Background(), nil, stream.BatchProv{}, true, err)
}

func (b *Broadcast) publish(ctx context.Context, items []stream.Item, prov stream.BatchProv, eos bool, errv error) error {
	if b.closed {
		return ErrClosed
	}
	b.mu.Lock()
	b.sealed = true
	b.mu.Unlock()

	seq := b.next
	var n int64
	var last int64
	for _, it := range items {
		if it.Heartbeat {
			last = int64(it.Watermark)
		} else {
			n++
			last = int64(it.Tuple.Arrival)
		}
	}
	b.cum += n
	nb := &batch{seq: seq, items: items, n: n, cum: b.cum, eos: eos, err: errv, prov: prov}

	// Wait for the slot: the previous occupant (seq - ring) must have
	// been released by every live Block consumer before it is
	// overwritten. ShedOldest consumers are deliberately excluded — they
	// are lapped, not waited for.
	ring := b.mask + 1
	for seq >= ring {
		if b.minCursor(true) > seq-ring {
			break
		}
		b.cons.waiters.Add(1)
		ch := b.cons.get()
		if b.minCursor(true) > seq-ring {
			b.cons.waiters.Add(-1)
			break
		}
		err := b.cons.await(ctx, ch)
		b.cons.waiters.Add(-1)
		if err != nil {
			b.cum -= n // unpublish: the batch never entered the ring
			return err
		}
	}

	// Recycle the batch being overwritten if every live consumer —
	// including ShedOldest ones — is past it; otherwise let the GC have
	// it (a straggling shed consumer may still be reading it).
	if old := b.slots[seq&b.mask].Load(); old != nil && old.items != nil {
		if b.minCursor(false) > old.seq {
			b.pool.Put(old.items[:0])
		}
	}

	b.slots[seq&b.mask].Store(nb)
	b.next = seq + 1
	b.pubSeq.Store(seq + 1)
	b.pubCum.Store(b.cum)
	if eos {
		b.closed = true
	} else {
		b.published.Add(1)
		if b.tracer != nil {
			b.tracer.FanoutPublish(last, seq, int(n))
		}
	}
	b.pub.wake()
	return nil
}

// Published reports how many batches were published (markers excluded).
func (b *Broadcast) Published() int64 { return b.published.Load() }

// Dropped reports how many data tuples were shed across all ShedOldest
// consumers.
func (b *Broadcast) Dropped() int64 { return b.dropped.Load() }

// cumData reports the cumulative count of published data tuples.
func (b *Broadcast) cumData() int64 { return b.pubCum.Load() }

// Pump drives the ring from a pull-based source: items are drained,
// batched (batchSize per publish, heartbeats force the batch out so
// progress signals are never parked), and published until the source
// ends or fails. A clean end publishes Close; a source error publishes
// Fail so every consumer aborts with the cause, and Pump returns it.
// Retry/chaos wrappers belong on src — upstream of the ring, where the
// single producer pays for resilience once on behalf of every consumer.
func (b *Broadcast) Pump(ctx context.Context, src stream.ErrSource, batchSize int) error {
	if batchSize <= 0 {
		batchSize = 64
	}
	cur := b.Get()
	ship := func() error {
		if len(cur) == 0 {
			return nil
		}
		if err := b.Publish(ctx, cur); err != nil {
			return err
		}
		cur = b.Get()
		return nil
	}
	for {
		it, ok, err := src.NextErr()
		if err != nil {
			b.Fail(fmt.Errorf("fanout: source: %w", err))
			return err
		}
		if !ok {
			if err := ship(); err != nil {
				b.Fail(err)
				return err
			}
			b.Close()
			return nil
		}
		cur = append(cur, it)
		if it.Heartbeat || len(cur) >= batchSize {
			if err := ship(); err != nil {
				b.Fail(err)
				return err
			}
		}
	}
}

// Sub is one consumer's handle on the ring. A Sub is owned by a single
// consumer goroutine; only Shed, Lag and Pending are safe to call from
// other goroutines (metrics scrape them).
type Sub struct {
	b      *Broadcast
	name   string
	policy Policy

	// cursor is the next sequence this consumer will read; advanced by
	// Release. The producer reads it to gate slot overwrites (Block) and
	// batch recycling (all policies).
	cursor atomic.Int64
	// acq is the next sequence NextBatch will hand out (consumer-local;
	// it runs ahead of cursor while batches are borrowed).
	acq int64
	// lastCum is the cumulative data count through the last acquired
	// batch — the baseline for exact shed accounting on a lap.
	lastCum int64

	shed atomic.Int64
	dead atomic.Bool
	// consumedFloor is the cumulative data count through the last
	// released batch, maintained for the Pending gauge.
	consumedFloor atomic.Int64

	// NextErr iteration state: the borrowed batch being walked.
	cur    *batch
	curIdx int

	termErr error // terminal producer error, once seen
	done    bool  // end-of-stream seen
}

// Name returns the subscriber name given at Subscribe.
func (s *Sub) Name() string { return s.name }

// Policy returns the subscriber's slow-consumer policy.
func (s *Sub) Policy() Policy { return s.policy }

// Shed reports the data tuples this consumer lost to ShedOldest laps.
func (s *Sub) Shed() int64 { return s.shed.Load() }

// Lag reports how many published batches this consumer has not yet
// released — the aq_fanout_lag_batches gauge.
func (s *Sub) Lag() int64 {
	lag := s.b.pubSeq.Load() - s.cursor.Load()
	if lag < 0 {
		return 0
	}
	return lag
}

// Pending reports the data tuples published but not yet consumed by
// this subscriber — the ring's contribution to aq_queue_depth.
func (s *Sub) Pending() int64 {
	// The consumed floor is the cumulative data count through the last
	// released batch (shed tuples fold into it when a lapped consumer
	// releases its adopted batch), so the difference is the in-ring
	// backlog — the usual metrics-grade approximation, read entirely
	// from atomics so scrape goroutines never race the consumer.
	p := s.b.cumData() - s.consumedFloor.Load()
	if p < 0 {
		return 0
	}
	return p
}

// Unsubscribe marks the consumer dead: the producer stops waiting on it
// and its unreleased batches become recyclable. Call it (or defer it)
// when a consumer exits early so Block peers and the producer are not
// wedged forever.
func (s *Sub) Unsubscribe() {
	if s.dead.Swap(true) {
		return
	}
	s.b.cons.wake()
}

// NextBatch borrows the next published batch: the items remain valid
// until Release(seq) is called. Releases must be issued in acquisition
// order. Returns ok=false at end of stream and a non-nil error when the
// producer failed (after all prior batches were delivered). ShedOldest
// consumers may observe a jump: skipped batches are accounted on Shed.
func (s *Sub) NextBatch(ctx context.Context) (items []stream.Item, seq int64, ok bool, err error) {
	items, seq, _, ok, err = s.NextBatchProv(ctx)
	return items, seq, ok, err
}

// NextBatchProv is NextBatch plus the batch's wire provenance (the zero
// BatchProv when the producer published without any).
func (s *Sub) NextBatchProv(ctx context.Context) (items []stream.Item, seq int64, prov stream.BatchProv, ok bool, err error) {
	bt, err := s.acquire(ctx)
	if err != nil {
		return nil, 0, stream.BatchProv{}, false, err
	}
	if bt == nil {
		return nil, 0, stream.BatchProv{}, false, nil
	}
	return bt.items, bt.seq, bt.prov, true, nil
}

// acquire waits for and adopts the batch at (or, for a lapped
// ShedOldest consumer, above) s.acq. nil, nil means end of stream.
func (s *Sub) acquire(ctx context.Context) (*batch, error) {
	if s.termErr != nil {
		return nil, s.termErr
	}
	if s.done {
		return nil, nil
	}
	for {
		bt := s.b.slots[s.acq&s.b.mask].Load()
		if bt != nil && bt.seq >= s.acq {
			if bt.seq > s.acq {
				// Lapped: bt is the oldest batch still in this slot. Under
				// Block this cannot happen (the producer waits); under
				// ShedOldest the skipped batches' data tuples are shed.
				if s.policy == Block {
					panic("fanout: Block consumer lapped (cursor protocol violated)")
				}
				lost := (bt.cum - bt.n) - s.lastCum
				s.shed.Add(lost)
				s.b.dropped.Add(lost)
			}
			s.lastCum = bt.cum
			s.acq = bt.seq + 1
			if bt.eos {
				// Terminal marker: adopt it as released immediately (it
				// carries no items) so the cursor reflects completion.
				s.cursor.Store(s.acq)
				s.consumedFloor.Store(bt.cum)
				s.b.cons.wake()
				if bt.err != nil {
					s.termErr = bt.err
					return nil, bt.err
				}
				s.done = true
				return nil, nil
			}
			return bt, nil
		}
		// Not yet published: park on the publish signal.
		s.b.pub.waiters.Add(1)
		ch := s.b.pub.get()
		if bt := s.b.slots[s.acq&s.b.mask].Load(); bt != nil && bt.seq >= s.acq {
			s.b.pub.waiters.Add(-1)
			continue
		}
		err := s.b.pub.await(ctx, ch)
		s.b.pub.waiters.Add(-1)
		if err != nil {
			return nil, err
		}
	}
}

// Release returns a borrowed batch to the ring. seq must be the
// sequence NextBatch handed out; releases are in-order, so the cursor
// simply advances past it.
func (s *Sub) Release(seq int64) {
	s.cursor.Store(seq + 1)
	if bt := s.b.slots[seq&s.b.mask].Load(); bt != nil && bt.seq == seq {
		s.consumedFloor.Store(bt.cum)
	}
	s.b.cons.wake()
}

// ErrSource adapts the subscription to stream.ErrSource under ctx: items
// are delivered one at a time (heartbeats included), batches are
// released as they are exhausted, and the producer's terminal error (or
// ctx cancellation) surfaces as the source error. The adapter owns the
// Sub; do not mix with NextBatch.
func (s *Sub) ErrSource(ctx context.Context) stream.ErrSource {
	return stream.ErrFuncSource(func() (stream.Item, bool, error) {
		for {
			if s.cur != nil && s.curIdx < len(s.cur.items) {
				it := s.cur.items[s.curIdx]
				s.curIdx++
				return it, true, nil
			}
			if s.cur != nil {
				s.Release(s.cur.seq)
				s.cur, s.curIdx = nil, 0
			}
			bt, err := s.acquire(ctx)
			if err != nil {
				return stream.Item{}, false, err
			}
			if bt == nil {
				return stream.Item{}, false, nil
			}
			s.cur, s.curIdx = bt, 0
		}
	})
}
