package cql

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary statements to the parser and checks two
// properties. First, no input panics — errors are the only rejection
// channel. Second, print/parse is a fixed point: any statement the
// parser accepts renders (Query.String) to a canonical form that parses
// back to the identical canonical form, so the printer never emits a
// statement the parser rejects or reads differently.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT sum(value) FROM sensor WINDOW 10s SLIDE 1s QUALITY 1%",
		"SELECT count(value) FROM cdr GROUP BY key WINDOW 30s SLIDE 5s QUALITY 0.5%",
		"SELECT avg(value) FROM trace('stream.csv') WINDOW 1m SLIDE 10s HANDLER kslack(2s)",
		"SELECT p95(value) FROM bursty WINDOW 500ms SLIDE 250ms HANDLER maxslack",
		"SELECT median(value) FROM drift WINDOW 1m SLIDE 1s HANDLER wm(99%)",
		"SELECT min(value) FROM stock WINDOW 10s SLIDE 10s HANDLER none",
		"SELECT distinct(value) FROM simnet WINDOW 2s SLIDE 1s HANDLER punctuated",
		"select SUM(value) from sensor window 10s slide 1s quality 2%",
		"SELECT sum(value) FROM sensor WINDOW 10s SLIDE 1s",            // missing quality/handler
		"SELECT sum(value) FROM sensor WINDOW 1s SLIDE 10s QUALITY 1%", // slide > size
		"",
		"SELECT",
		"SELECT sum(value) FROM trace('a''b') WINDOW 1s SLIDE 1s QUALITY 1%",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input) // must not panic, whatever the input
		if err != nil {
			return
		}
		canon := q.String()
		q2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form rejected:\n  input %q\n  canon %q\n  err   %v", input, canon, err)
		}
		if got := q2.String(); got != canon {
			t.Fatalf("print/parse not a fixed point:\n  input %q\n  canon %q\n  again %q", input, canon, got)
		}
		// The canonical form must round-trip the semantic fields too, not
		// just the text (Agg is a factory; compare by name).
		if q2.AggName != q.AggName || q2.Source != q.Source || q2.TraceFile != q.TraceFile ||
			q2.GroupBy != q.GroupBy || q2.Spec != q.Spec || q2.Quality != q.Quality || q2.Handler != q.Handler {
			t.Fatalf("semantics drifted across round trip:\n  %+v\nvs %+v", q, q2)
		}
		// Sanity: the printer always emits a single line.
		if strings.ContainsAny(canon, "\n\r") {
			t.Fatalf("canonical form is multi-line: %q", canon)
		}
	})
}
