package cql

import (
	"fmt"
	"os"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/gen"
	"repro/internal/obs/tracez"
	"repro/internal/sim"
	"repro/internal/stream"
)

// BuildHandler constructs the disorder handler the query requests.
func (q Query) BuildHandler() (buffer.Handler, error) {
	if q.Quality > 0 {
		return core.NewAQKSlack(core.Config{Theta: q.Quality, Spec: q.Spec, Agg: q.Agg}), nil
	}
	switch q.Handler.Kind {
	case "none":
		return buffer.Zero(), nil
	case "maxslack":
		return buffer.NewMaxSlack(), nil
	case "punctuated":
		return buffer.NewPunctuated(), nil
	case "kslack":
		return buffer.NewKSlack(q.Handler.K), nil
	case "wm":
		return buffer.NewPercentile(q.Handler.P, 500), nil
	default:
		return nil, fmt.Errorf("cql: no handler in query (parse bug?)")
	}
}

// SourceCatalog answers whether a named stream exists. The network
// control plane's source registry implements it so statements can be
// bound against the live fleet instead of the built-in generators.
type SourceCatalog interface {
	HasSource(name string) bool
}

// BindSource validates the query's FROM clause against a catalog of
// live sources. Unlike Tuples — which materializes a built-in
// generator — binding admits any registered source name, but rejects
// trace(...) sources (a network engine replays nothing from local
// disk) and names the catalog has never seen.
func (q Query) BindSource(cat SourceCatalog) error {
	if q.TraceFile != "" {
		return fmt.Errorf("cql: trace(...) sources cannot bind to a live stream registry")
	}
	if !cat.HasSource(q.Source) {
		return fmt.Errorf("cql: unknown source %q: not registered and no ingest seen", q.Source)
	}
	return nil
}

// Tuples materializes the query's input stream: n generated tuples with
// the given seed, or the recorded trace for trace(...) sources (n and
// seed ignored there).
func (q Query) Tuples(n int, seed uint64) ([]stream.Tuple, error) {
	if q.TraceFile != "" {
		f, err := os.Open(q.TraceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return gen.ReadTrace(f)
	}
	var c gen.Config
	switch q.Source {
	case "sensor":
		c = gen.Sensor(n, seed)
	case "bursty":
		c = gen.SensorBursty(n, seed)
	case "drift":
		c = gen.SensorDrift(n, stream.Time(n/2)*10, seed)
	case "stock":
		c = gen.Stock(n, 100, seed)
	case "cdr":
		c = gen.CDR(n, seed)
	case "simnet":
		c = gen.Sensor(n, seed)
		c.Delays = nil
		net := sim.DefaultNetwork()
		net.Seed = seed
		return sim.Transport(c.Events(), net), nil
	default:
		return nil, fmt.Errorf("cql: unknown source %q", q.Source)
	}
	if q.GroupBy && c.NumKeys <= 1 {
		c.NumKeys = 16 // grouped queries need keys; default fan-out
	}
	return c.Arrivals(), nil
}

// Run executes the query end to end: n generated tuples (or the trace),
// the requested handler, the requested window shape. KeepInput is always
// set so callers can compute quality against the oracle.
func (q Query) Run(n int, seed uint64) (*cq.AggReport, error) {
	return q.RunTraced(n, seed, nil)
}

// RunTraced is Run with an optional tracez event tracer attached to the
// execution: buffer activity, controller decisions and window emissions
// land in tr's flight recorder (cqlsh -trace exports it as a Chrome
// trace). A nil tr runs untraced. Note this is event tracing over the
// pipeline, unrelated to the trace('file.csv') CQL source, which replays
// a recorded tuple stream as input.
func (q Query) RunTraced(n int, seed uint64, tr *tracez.Tracer) (*cq.AggReport, error) {
	tuples, err := q.Tuples(n, seed)
	if err != nil {
		return nil, err
	}
	var src stream.Source = stream.FromTuples(tuples)
	if q.Quality == 0 && q.Handler.Kind == "punctuated" {
		src = stream.NewSliceSource(gen.WithOracleWatermarks(tuples, 64))
	}
	h, err := q.BuildHandler()
	if err != nil {
		return nil, err
	}
	b := cq.New(src).Handle(h).Window(q.Spec, q.Agg).KeepInput()
	if tr != nil {
		b = b.Trace(tr)
	}
	if q.GroupBy {
		b = b.GroupBy()
	}
	return b.Run()
}
