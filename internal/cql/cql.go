// Package cql parses a small continuous-query language — the front end a
// demonstration of this system would expose. A statement names an
// aggregate over a windowed stream and, crucially, declares the quality
// bound that drives disorder handling:
//
//	SELECT sum(value) FROM sensor
//	    WINDOW 10s SLIDE 1s
//	    QUALITY 1%
//
//	SELECT count(value) FROM cdr GROUP BY key
//	    WINDOW 30s SLIDE 5s
//	    QUALITY 0.5%
//
//	SELECT avg(value) FROM trace('stream.csv')
//	    WINDOW 1m SLIDE 10s
//	    HANDLER kslack(2s)
//
// Clauses:
//
//	SELECT <agg>(value)      aggregate: count|sum|avg|min|max|median|stddev|distinct|pNN
//	FROM <source>            workload name (sensor|bursty|drift|stock|cdr|simnet)
//	                         or trace('file.csv')
//	GROUP BY key             optional: per-key windows
//	WINDOW <dur> SLIDE <dur> required window spec (durations: 500ms, 10s, 1m)
//	QUALITY <pct>            quality bound; selects the adaptive AQ handler
//	HANDLER <spec>           explicit handler instead of QUALITY:
//	                         none | maxslack | kslack(<dur>) | wm(<pct>) | punctuated
//
// Exactly one of QUALITY or HANDLER must be present. Keywords are
// case-insensitive; identifiers are not.
//
// Naming note: trace('file.csv') is a *source* — it replays a recorded
// tuple stream from disk as the query's input. It is unrelated to event
// tracing (internal/obs/tracez, cqlsh -trace, /debug/aq/trace), which
// records what the pipeline did while executing. docs/OBSERVABILITY.md
// spells out the distinction.
package cql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/stream"
	"repro/internal/window"
)

// Query is the parsed form of a statement.
type Query struct {
	Agg     window.Factory
	AggName string

	Source    string // workload name, or "" when TraceFile is set
	TraceFile string

	GroupBy bool
	Spec    window.Spec

	// Quality > 0 selects the adaptive handler with this bound.
	Quality float64
	// Handler is the explicit handler spec when Quality == 0.
	Handler HandlerSpec
}

// HandlerSpec is an explicitly requested disorder handler.
type HandlerSpec struct {
	Kind string      // none | maxslack | kslack | wm | punctuated
	K    stream.Time // kslack only
	P    float64     // wm only
}

// String reconstructs a canonical form of the query.
func (q Query) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SELECT %s(value) FROM ", q.AggName)
	if q.TraceFile != "" {
		// The lexer has no escape sequences, so quote with whichever
		// delimiter the name doesn't contain (a parsed name can never
		// contain the delimiter it was written with, so one always fits;
		// %q would emit backslash escapes the parser cannot read back).
		if strings.ContainsRune(q.TraceFile, '\'') {
			fmt.Fprintf(&b, "trace(\"%s\")", q.TraceFile)
		} else {
			fmt.Fprintf(&b, "trace('%s')", q.TraceFile)
		}
	} else {
		b.WriteString(q.Source)
	}
	if q.GroupBy {
		b.WriteString(" GROUP BY key")
	}
	fmt.Fprintf(&b, " WINDOW %s SLIDE %s", fmtDur(q.Spec.Size), fmtDur(q.Spec.Slide))
	if q.Quality > 0 {
		fmt.Fprintf(&b, " QUALITY %g%%", q.Quality*100)
	} else {
		b.WriteString(" HANDLER " + q.Handler.String())
	}
	return b.String()
}

// String renders the handler spec.
func (h HandlerSpec) String() string {
	switch h.Kind {
	case "kslack":
		return fmt.Sprintf("kslack(%s)", fmtDur(h.K))
	case "wm":
		return fmt.Sprintf("wm(%g%%)", h.P*100)
	default:
		return h.Kind
	}
}

func fmtDur(d stream.Time) string {
	switch {
	case d%stream.Minute == 0:
		return fmt.Sprintf("%dm", d/stream.Minute)
	case d%stream.Second == 0:
		return fmt.Sprintf("%ds", d/stream.Second)
	default:
		return fmt.Sprintf("%dms", d)
	}
}

// --- lexer ---

type tokKind int

const (
	tokIdent  tokKind = iota
	tokNumber         // 123, 1.5 (may carry a trailing unit/%% via ident rules)
	tokString         // 'quoted'
	tokLParen
	tokRParen
	tokPercent
	tokEOF
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	in  string
	pos int
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.in) && isSpace(l.in[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.in) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.in[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == '%':
		l.pos++
		return token{tokPercent, "%", start}, nil
	case c == ',':
		l.pos++
		return l.next() // commas are decorative
	case c == '\'' || c == '"':
		quote := c
		l.pos++
		for l.pos < len(l.in) && l.in[l.pos] != quote {
			l.pos++
		}
		if l.pos >= len(l.in) {
			return token{}, fmt.Errorf("cql: unterminated string at %d", start)
		}
		text := l.in[start+1 : l.pos]
		l.pos++
		return token{tokString, text, start}, nil
	case isDigit(c):
		for l.pos < len(l.in) && (isDigit(l.in[l.pos]) || l.in[l.pos] == '.') {
			l.pos++
		}
		// A trailing unit (ms, s, m) glues onto the number.
		for l.pos < len(l.in) && isAlpha(l.in[l.pos]) {
			l.pos++
		}
		return token{tokNumber, l.in[start:l.pos], start}, nil
	case isAlpha(c):
		for l.pos < len(l.in) && (isAlpha(l.in[l.pos]) || isDigit(l.in[l.pos]) || l.in[l.pos] == '_' || l.in[l.pos] == '.') {
			l.pos++
		}
		return token{tokIdent, l.in[start:l.pos], start}, nil
	default:
		return token{}, fmt.Errorf("cql: unexpected character %q at %d", c, start)
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }

// --- parser ---

type parser struct {
	lex lexer
	cur token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

// expectKeyword consumes the current token if it equals (case-insensitive)
// the keyword.
func (p *parser) expectKeyword(kw string) error {
	if p.cur.kind != tokIdent || !strings.EqualFold(p.cur.text, kw) {
		return fmt.Errorf("cql: expected %s at position %d, got %q", kw, p.cur.pos, p.cur.text)
	}
	return p.advance()
}

func (p *parser) isKeyword(kw string) bool {
	return p.cur.kind == tokIdent && strings.EqualFold(p.cur.text, kw)
}

// Parse parses one statement.
func Parse(input string) (Query, error) {
	p := &parser{lex: lexer{in: input}}
	if err := p.advance(); err != nil {
		return Query{}, err
	}
	var q Query

	if err := p.expectKeyword("SELECT"); err != nil {
		return q, err
	}
	if p.cur.kind != tokIdent {
		return q, fmt.Errorf("cql: expected aggregate at %d", p.cur.pos)
	}
	aggName := strings.ToLower(p.cur.text)
	agg, err := window.ByName(aggName)
	if err != nil {
		return q, err
	}
	q.Agg, q.AggName = agg, aggName
	if err := p.advance(); err != nil {
		return q, err
	}
	// Optional "(value)".
	if p.cur.kind == tokLParen {
		if err := p.advance(); err != nil {
			return q, err
		}
		if err := p.expectKeyword("value"); err != nil {
			return q, err
		}
		if p.cur.kind != tokRParen {
			return q, fmt.Errorf("cql: expected ) at %d", p.cur.pos)
		}
		if err := p.advance(); err != nil {
			return q, err
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return q, err
	}
	if p.cur.kind != tokIdent {
		return q, fmt.Errorf("cql: expected source at %d", p.cur.pos)
	}
	if strings.EqualFold(p.cur.text, "trace") {
		if err := p.advance(); err != nil {
			return q, err
		}
		if p.cur.kind != tokLParen {
			return q, fmt.Errorf("cql: expected ( after trace at %d", p.cur.pos)
		}
		if err := p.advance(); err != nil {
			return q, err
		}
		if p.cur.kind != tokString {
			return q, fmt.Errorf("cql: expected quoted file name at %d", p.cur.pos)
		}
		if p.cur.text == "" {
			return q, fmt.Errorf("cql: empty trace file name at %d", p.cur.pos)
		}
		q.TraceFile = p.cur.text
		if err := p.advance(); err != nil {
			return q, err
		}
		if p.cur.kind != tokRParen {
			return q, fmt.Errorf("cql: expected ) at %d", p.cur.pos)
		}
		if err := p.advance(); err != nil {
			return q, err
		}
	} else {
		q.Source = p.cur.text
		if err := p.advance(); err != nil {
			return q, err
		}
	}

	// Optional GROUP BY key.
	if p.isKeyword("GROUP") {
		if err := p.advance(); err != nil {
			return q, err
		}
		if err := p.expectKeyword("BY"); err != nil {
			return q, err
		}
		if err := p.expectKeyword("key"); err != nil {
			return q, err
		}
		q.GroupBy = true
	}

	if err := p.expectKeyword("WINDOW"); err != nil {
		return q, err
	}
	size, err := p.duration()
	if err != nil {
		return q, err
	}
	if err := p.expectKeyword("SLIDE"); err != nil {
		return q, err
	}
	slide, err := p.duration()
	if err != nil {
		return q, err
	}
	q.Spec = window.Spec{Size: size, Slide: slide}
	if err := q.Spec.Validate(); err != nil {
		return q, err
	}

	switch {
	case p.isKeyword("QUALITY"):
		if err := p.advance(); err != nil {
			return q, err
		}
		frac, err := p.percent()
		if err != nil {
			return q, err
		}
		if frac <= 0 || frac >= 1 {
			return q, fmt.Errorf("cql: QUALITY must be in (0%%, 100%%), got %g%%", frac*100)
		}
		q.Quality = frac
	case p.isKeyword("HANDLER"):
		if err := p.advance(); err != nil {
			return q, err
		}
		h, err := p.handlerSpec()
		if err != nil {
			return q, err
		}
		q.Handler = h
	default:
		return q, fmt.Errorf("cql: expected QUALITY or HANDLER at %d, got %q", p.cur.pos, p.cur.text)
	}

	if p.cur.kind != tokEOF {
		return q, fmt.Errorf("cql: trailing input at %d: %q", p.cur.pos, p.cur.text)
	}
	return q, nil
}

// duration consumes a number-with-unit token: 500ms, 10s, 1m, or a bare
// number of stream-time units.
func (p *parser) duration() (stream.Time, error) {
	if p.cur.kind != tokNumber {
		return 0, fmt.Errorf("cql: expected duration at %d, got %q", p.cur.pos, p.cur.text)
	}
	text := p.cur.text
	if err := p.advance(); err != nil {
		return 0, err
	}
	return parseDuration(text)
}

func parseDuration(text string) (stream.Time, error) {
	unit := stream.Time(1)
	num := text
	switch {
	case strings.HasSuffix(text, "ms"):
		num = strings.TrimSuffix(text, "ms")
	case strings.HasSuffix(text, "s"):
		num, unit = strings.TrimSuffix(text, "s"), stream.Second
	case strings.HasSuffix(text, "m"):
		num, unit = strings.TrimSuffix(text, "m"), stream.Minute
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("cql: bad duration %q", text)
	}
	return stream.Time(v * float64(unit)), nil
}

// percent consumes a number optionally followed by %; without % the value
// is interpreted as a fraction (0.01 == 1%).
func (p *parser) percent() (float64, error) {
	if p.cur.kind != tokNumber {
		return 0, fmt.Errorf("cql: expected percentage at %d, got %q", p.cur.pos, p.cur.text)
	}
	v, err := strconv.ParseFloat(p.cur.text, 64)
	if err != nil {
		return 0, fmt.Errorf("cql: bad number %q", p.cur.text)
	}
	if err := p.advance(); err != nil {
		return 0, err
	}
	if p.cur.kind == tokPercent {
		v /= 100
		if err := p.advance(); err != nil {
			return 0, err
		}
	}
	return v, nil
}

// handlerSpec consumes none | maxslack | punctuated | kslack(<dur>) |
// wm(<pct>).
func (p *parser) handlerSpec() (HandlerSpec, error) {
	if p.cur.kind != tokIdent {
		return HandlerSpec{}, fmt.Errorf("cql: expected handler at %d", p.cur.pos)
	}
	kind := strings.ToLower(p.cur.text)
	if err := p.advance(); err != nil {
		return HandlerSpec{}, err
	}
	switch kind {
	case "none", "maxslack", "punctuated":
		return HandlerSpec{Kind: kind}, nil
	case "kslack":
		if p.cur.kind != tokLParen {
			return HandlerSpec{}, fmt.Errorf("cql: kslack needs (duration)")
		}
		if err := p.advance(); err != nil {
			return HandlerSpec{}, err
		}
		k, err := p.duration()
		if err != nil {
			return HandlerSpec{}, err
		}
		if p.cur.kind != tokRParen {
			return HandlerSpec{}, fmt.Errorf("cql: expected ) at %d", p.cur.pos)
		}
		if err := p.advance(); err != nil {
			return HandlerSpec{}, err
		}
		return HandlerSpec{Kind: kind, K: k}, nil
	case "wm":
		if p.cur.kind != tokLParen {
			return HandlerSpec{}, fmt.Errorf("cql: wm needs (percentile)")
		}
		if err := p.advance(); err != nil {
			return HandlerSpec{}, err
		}
		frac, err := p.percent()
		if err != nil {
			return HandlerSpec{}, err
		}
		if frac <= 0 || frac > 1 {
			return HandlerSpec{}, fmt.Errorf("cql: wm percentile must be in (0, 100%%]")
		}
		if p.cur.kind != tokRParen {
			return HandlerSpec{}, fmt.Errorf("cql: expected ) at %d", p.cur.pos)
		}
		if err := p.advance(); err != nil {
			return HandlerSpec{}, err
		}
		return HandlerSpec{Kind: kind, P: frac}, nil
	default:
		return HandlerSpec{}, fmt.Errorf("cql: unknown handler %q", kind)
	}
}
