package cql

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/window"
)

func TestParseMinimal(t *testing.T) {
	q, err := Parse("SELECT sum(value) FROM sensor WINDOW 10s SLIDE 1s QUALITY 1%")
	if err != nil {
		t.Fatal(err)
	}
	if q.AggName != "sum" || q.Source != "sensor" {
		t.Fatalf("parsed: %+v", q)
	}
	if q.Spec.Size != 10*stream.Second || q.Spec.Slide != stream.Second {
		t.Fatalf("spec: %+v", q.Spec)
	}
	if q.Quality != 0.01 {
		t.Fatalf("quality: %v", q.Quality)
	}
	if q.GroupBy {
		t.Fatal("unexpected group by")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q, err := Parse("select p95(value) from cdr group by key window 30s slide 5s quality 0.5%")
	if err != nil {
		t.Fatal(err)
	}
	if !q.GroupBy || q.AggName != "p95" || q.Quality != 0.005 {
		t.Fatalf("parsed: %+v", q)
	}
}

func TestParseAggregateWithoutParens(t *testing.T) {
	q, err := Parse("SELECT median FROM stock WINDOW 1m SLIDE 10s QUALITY 2%")
	if err != nil {
		t.Fatal(err)
	}
	if q.AggName != "median" || q.Spec.Size != stream.Minute {
		t.Fatalf("parsed: %+v", q)
	}
}

func TestParseHandlerSpecs(t *testing.T) {
	cases := map[string]HandlerSpec{
		"HANDLER none":          {Kind: "none"},
		"HANDLER maxslack":      {Kind: "maxslack"},
		"HANDLER punctuated":    {Kind: "punctuated"},
		"HANDLER kslack(2s)":    {Kind: "kslack", K: 2 * stream.Second},
		"HANDLER kslack(500ms)": {Kind: "kslack", K: 500},
		"HANDLER wm(95%)":       {Kind: "wm", P: 0.95},
		"HANDLER wm(0.99)":      {Kind: "wm", P: 0.99},
	}
	for suffix, want := range cases {
		q, err := Parse("SELECT sum FROM sensor WINDOW 10s SLIDE 1s " + suffix)
		if err != nil {
			t.Errorf("%s: %v", suffix, err)
			continue
		}
		if q.Handler != want {
			t.Errorf("%s: got %+v, want %+v", suffix, q.Handler, want)
		}
		if q.Quality != 0 {
			t.Errorf("%s: quality set unexpectedly", suffix)
		}
	}
}

func TestParseTraceSource(t *testing.T) {
	q, err := Parse(`SELECT avg FROM trace('data/s.csv') WINDOW 10s SLIDE 1s QUALITY 1%`)
	if err != nil {
		t.Fatal(err)
	}
	if q.TraceFile != "data/s.csv" || q.Source != "" {
		t.Fatalf("parsed: %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"SELECT bogus FROM sensor WINDOW 10s SLIDE 1s QUALITY 1%",
		"SELECT sum FROM sensor SLIDE 1s QUALITY 1%",                           // missing WINDOW
		"SELECT sum FROM sensor WINDOW 1s SLIDE 10s QUALITY 1%",                // slide > size
		"SELECT sum FROM sensor WINDOW 10s SLIDE 1s",                           // no QUALITY/HANDLER
		"SELECT sum FROM sensor WINDOW 10s SLIDE 1s QUALITY 150%",              // out of range
		"SELECT sum FROM sensor WINDOW 10s SLIDE 1s QUALITY 1% extra",          // trailing
		"SELECT sum FROM sensor WINDOW 10s SLIDE 1s HANDLER bogus",             // unknown handler
		"SELECT sum FROM sensor WINDOW 10s SLIDE 1s HANDLER kslack",            // missing arg
		"SELECT sum FROM trace('x WINDOW 10s SLIDE 1s QUALITY 1%",              // unterminated string
		"SELECT sum FROM sensor WINDOW zz SLIDE 1s QUALITY 1%",                 // bad duration
		"SELECT sum(value FROM sensor WINDOW 10s SLIDE 1s QUALITY 1%",          // unclosed parens
		"SELECT sum FROM sensor GROUP BY value WINDOW 10s SLIDE 1s QUALITY 1%", // group by non-key
	}
	for _, in := range cases {
		if _, err := Parse(in); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestQueryStringRoundTrips(t *testing.T) {
	inputs := []string{
		"SELECT sum(value) FROM sensor WINDOW 10s SLIDE 1s QUALITY 1%",
		"SELECT count(value) FROM cdr GROUP BY key WINDOW 30s SLIDE 5s QUALITY 0.5%",
		"SELECT avg(value) FROM stock WINDOW 1m SLIDE 10s HANDLER kslack(2s)",
		"SELECT max(value) FROM bursty WINDOW 10s SLIDE 1s HANDLER wm(95%)",
	}
	for _, in := range inputs {
		q, err := Parse(in)
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		again, err := Parse(q.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", q.String(), err)
		}
		if again.String() != q.String() {
			t.Fatalf("round trip drifted: %q vs %q", q.String(), again.String())
		}
	}
}

func TestBuildHandlerKinds(t *testing.T) {
	for _, in := range []string{
		"SELECT sum FROM sensor WINDOW 10s SLIDE 1s QUALITY 1%",
		"SELECT sum FROM sensor WINDOW 10s SLIDE 1s HANDLER none",
		"SELECT sum FROM sensor WINDOW 10s SLIDE 1s HANDLER maxslack",
		"SELECT sum FROM sensor WINDOW 10s SLIDE 1s HANDLER punctuated",
		"SELECT sum FROM sensor WINDOW 10s SLIDE 1s HANDLER kslack(1s)",
		"SELECT sum FROM sensor WINDOW 10s SLIDE 1s HANDLER wm(90%)",
	} {
		q, err := Parse(in)
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		h, err := q.BuildHandler()
		if err != nil || h == nil {
			t.Fatalf("%s: handler %v err %v", in, h, err)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	q, err := Parse("SELECT sum(value) FROM sensor WINDOW 10s SLIDE 1s QUALITY 2%")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := q.Run(20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) == 0 {
		t.Fatal("no results")
	}
	quality := rep.Quality(q.Spec, q.Agg, metrics.CompareOpts{
		Theta: q.Quality, SkipWarmup: 10, SkipEmptyOracle: true,
	})
	if quality.MeanRelErr > q.Quality {
		t.Fatalf("declared quality violated: %v", quality)
	}
}

func TestRunGroupedEndToEnd(t *testing.T) {
	q, err := Parse("SELECT count FROM cdr GROUP BY key WINDOW 10s SLIDE 10s QUALITY 5%")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := q.Run(10000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Keyed) == 0 {
		t.Fatal("grouped query produced no keyed results")
	}
}

func TestRunPunctuatedIsExact(t *testing.T) {
	q, err := Parse("SELECT sum FROM sensor WINDOW 10s SLIDE 1s HANDLER punctuated")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := q.Run(10000, 9)
	if err != nil {
		t.Fatal(err)
	}
	quality := rep.Quality(q.Spec, q.Agg, metrics.CompareOpts{SkipEmptyOracle: true})
	if quality.MaxRelErr != 0 {
		t.Fatalf("punctuated query not exact: %v", quality)
	}
}

func TestRunUnknownSource(t *testing.T) {
	q, err := Parse("SELECT sum FROM nosuch WINDOW 10s SLIDE 1s QUALITY 1%")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Run(100, 1); err == nil {
		t.Fatal("unknown source accepted at run time")
	}
}

func TestRunTraceMissingFile(t *testing.T) {
	q, err := Parse(`SELECT sum FROM trace('/nonexistent/x.csv') WINDOW 10s SLIDE 1s QUALITY 1%`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Run(100, 1); err == nil {
		t.Fatal("missing trace accepted")
	}
}

func TestWindowFactoryWiring(t *testing.T) {
	q, err := Parse("SELECT distinct FROM sensor WINDOW 5s SLIDE 5s QUALITY 10%")
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg.New() == nil {
		t.Fatal("factory not wired")
	}
	var _ window.Factory = q.Agg
	if !strings.Contains(q.String(), "distinct") {
		t.Fatalf("String = %q", q.String())
	}
}

type mapCatalog map[string]bool

func (m mapCatalog) HasSource(name string) bool { return m[name] }

func TestBindSource(t *testing.T) {
	cat := mapCatalog{"sensors": true}
	q, err := Parse(`SELECT sum FROM sensors WINDOW 10s SLIDE 1s QUALITY 1%`)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.BindSource(cat); err != nil {
		t.Fatalf("registered source rejected: %v", err)
	}
	q2, err := Parse(`SELECT sum FROM nosuch WINDOW 10s SLIDE 1s QUALITY 1%`)
	if err != nil {
		t.Fatal(err)
	}
	if err := q2.BindSource(cat); err == nil {
		t.Fatal("unregistered source bound")
	}
	q3, err := Parse(`SELECT sum FROM trace('x.csv') WINDOW 10s SLIDE 1s QUALITY 1%`)
	if err != nil {
		t.Fatal(err)
	}
	if err := q3.BindSource(cat); err == nil {
		t.Fatal("trace source bound to live registry")
	}
}
