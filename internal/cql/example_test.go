package cql_test

import (
	"fmt"

	"repro/internal/cql"
)

// Example shows the query language round trip: parse a statement, inspect
// its pieces, print its canonical form.
func Example() {
	q, err := cql.Parse(`
		SELECT p95(value) FROM cdr GROUP BY key
		WINDOW 30s SLIDE 5s
		QUALITY 2%`)
	if err != nil {
		panic(err)
	}
	fmt.Println(q.AggName, q.Spec.Size, q.Spec.Slide, q.Quality)
	fmt.Println(q.String())
	// Output:
	// p95 30000 5000 0.02
	// SELECT p95(value) FROM cdr GROUP BY key WINDOW 30s SLIDE 5s QUALITY 2%
}
