// Package fleet is the runtime control plane's bookkeeping core: a
// registry of named ingest sources and the continuous queries attached
// to them. It is the glue between the network edge (internal/netstream
// delivers decoded item batches here) and the fan-out substrate
// (internal/fanout broadcasts each source's stream to its queries):
//
//   - Every named source owns one broadcast ring. TCP connections for
//     that source all publish into the same ring, serialized by the
//     source (the ring is single-producer), so N queries over one
//     source pay one ingest path — the PR 8 fan-out economics extended
//     to network ingest.
//   - Queries attach to a source at runtime via fanout.SubscribeLate:
//     they see the stream from the moment of attachment with a zero
//     shed baseline, and always under the ShedOldest policy — a
//     runtime query must never backpressure the shared ingest path of
//     its neighbours (quality degrades before the fleet stalls, the
//     paper's central trade made multi-tenant).
//   - Per-tenant quotas bound the blast radius of any one tenant: a
//     cap on registered queries (admission control, HTTP 429) and a
//     token-bucket cap on ingest rate (over-rate data tuples are shed
//     at the door and charged to the source's RateShed counter, which
//     the engine folds into AggReport.Shed exactly like ring laps).
//
// The registry implements netstream.Sink, so a netstream.Listener can
// feed it directly, and the cql.SourceCatalog interface, so statement
// binding can reject queries over unknown sources before any runner
// spins up.
package fleet

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fanout"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/stream"
)

// Quotas bounds what one tenant may consume. Zero values mean
// unlimited.
type Quotas struct {
	// MaxQueriesPerTenant caps concurrently registered queries per
	// tenant.
	MaxQueriesPerTenant int
	// MaxIngestPerSec caps data tuples per second per source (token
	// bucket, burst of one second). Heartbeats always pass — progress
	// signals must survive overload or watermarks stall and quality
	// collapses for reasons the quality model cannot see.
	MaxIngestPerSec int
}

// Options configures a Registry.
type Options struct {
	Quotas Quotas
	// Ring is the per-source broadcast ring size in batches (<= 0
	// picks 256).
	Ring int
	// Clock drives the rate limiter; nil means WallClock. The
	// deterministic tests inject a fake.
	Clock resilience.Clock
	// Metrics, when non-nil, registers per-source ingest series
	// (aq_source_tuples_total, aq_source_rate_shed_total) as sources
	// appear.
	Metrics *obs.Registry
}

// Registry tracks sources and queries. Safe for concurrent use.
type Registry struct {
	opts Options

	mu      sync.Mutex
	sources map[string]*Source
	queries map[string]*Query
	byTen   map[string]int // live query count per tenant
	closed  bool
}

// NewRegistry builds an empty registry.
func NewRegistry(opts Options) *Registry {
	if opts.Ring <= 0 {
		opts.Ring = 256
	}
	if opts.Clock == nil {
		opts.Clock = resilience.WallClock{}
	}
	return &Registry{
		opts:    opts,
		sources: make(map[string]*Source),
		queries: make(map[string]*Query),
		byTen:   make(map[string]int),
	}
}

// Source returns the named source, creating it on first use.
func (r *Registry) Source(name string) *Source {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sourceLocked(name)
}

func (r *Registry) sourceLocked(name string) *Source {
	s, ok := r.sources[name]
	if !ok {
		s = &Source{
			name:  name,
			ring:  fanout.New(fanout.Options{Ring: r.opts.Ring}),
			rate:  r.opts.Quotas.MaxIngestPerSec,
			clock: r.opts.Clock,
		}
		s.lastRefill = r.opts.Clock.Now()
		s.tokens = float64(s.rate) // full bucket: one second of burst
		r.sources[name] = s
		if reg := r.opts.Metrics; reg != nil {
			reg.CounterFunc("aq_source_tuples_total",
				"Data tuples admitted to the source's broadcast ring.",
				func() float64 { return float64(s.Tuples()) }, obs.L("source", name))
			reg.CounterFunc("aq_source_rate_shed_total",
				"Data tuples dropped by the per-source ingest rate limiter.",
				func() float64 { return float64(s.RateShed()) }, obs.L("source", name))
		}
	}
	return s
}

// HasSource implements cql.SourceCatalog: query binding consults it to
// reject statements over sources nothing has registered or fed.
func (r *Registry) HasSource(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.sources[name]
	return ok
}

// SourceNames lists registered sources, sorted.
func (r *Registry) SourceNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.sources))
	for n := range r.sources {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Publish implements netstream.Sink: decoded batches from the TCP
// listener land on the named source's ring. The items slice is the
// listener's reusable batch buffer, so the source copies before
// publishing. prov is the batch's wire provenance (zero for v1
// producers); it rides the ring so consumers can attribute emission
// latency back to the client's send time.
func (r *Registry) Publish(source, tenant string, items []stream.Item, prov stream.BatchProv) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return fmt.Errorf("fleet: registry closed")
	}
	s := r.sourceLocked(source)
	r.mu.Unlock()
	return s.PublishProv(items, prov)
}

// Query is one registered runtime query's control-plane entry. The
// engine half (runner goroutine, metrics, durability) lives in
// cmd/aqserver; the registry only tracks identity and the stop hook.
type Query struct {
	Name      string
	Tenant    string
	Statement string
	// Stop tears the runner down (cancel pump, finish, unsubscribe).
	// Called exactly once, by Registry.RemoveQuery or Registry.Close.
	Stop func()
}

// AddQuery admits a query under the per-tenant quota. It returns
// ErrQuotaExceeded when the tenant is at its cap and ErrDuplicate when
// the name is taken.
func (r *Registry) AddQuery(q *Query) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("fleet: registry closed")
	}
	if _, ok := r.queries[q.Name]; ok {
		return &DuplicateError{Name: q.Name}
	}
	if max := r.opts.Quotas.MaxQueriesPerTenant; max > 0 && r.byTen[q.Tenant] >= max {
		return &QuotaError{Tenant: q.Tenant, Limit: max}
	}
	r.queries[q.Name] = q
	r.byTen[q.Tenant]++
	return nil
}

// Admissible reports whether AddQuery for (name, tenant) would pass the
// duplicate and quota checks right now, without reserving anything. It
// lets callers skip building expensive per-query state (durable-log
// recovery, ring attachment) for registrations that would be rejected;
// AddQuery remains the authoritative check under races.
func (r *Registry) Admissible(name, tenant string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("fleet: registry closed")
	}
	if _, ok := r.queries[name]; ok {
		return &DuplicateError{Name: name}
	}
	if max := r.opts.Quotas.MaxQueriesPerTenant; max > 0 && r.byTen[tenant] >= max {
		return &QuotaError{Tenant: tenant, Limit: max}
	}
	return nil
}

// Query returns the named query entry, or nil.
func (r *Registry) Query(name string) *Query {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.queries[name]
}

// QueryNames lists registered queries, sorted.
func (r *Registry) QueryNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.queries))
	for n := range r.queries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Tenants returns the live query count per tenant (the control plane's
// per-tenant rollup input). The empty tenant appears under "".
func (r *Registry) Tenants() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int, len(r.byTen))
	for t, n := range r.byTen {
		out[t] = n
	}
	return out
}

// RemoveQuery stops and deregisters the named query. It reports
// whether the query existed.
func (r *Registry) RemoveQuery(name string) bool {
	r.mu.Lock()
	q, ok := r.queries[name]
	if ok {
		delete(r.queries, name)
		if r.byTen[q.Tenant]--; r.byTen[q.Tenant] == 0 {
			delete(r.byTen, q.Tenant)
		}
	}
	r.mu.Unlock()
	if ok && q.Stop != nil {
		q.Stop()
	}
	return ok
}

// Close stops every query and closes every source ring (consumers see
// a clean end of stream). The registry rejects publishes and
// admissions afterwards.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	qs := make([]*Query, 0, len(r.queries))
	for _, q := range r.queries {
		qs = append(qs, q)
	}
	r.queries = make(map[string]*Query)
	r.byTen = make(map[string]int)
	srcs := make([]*Source, 0, len(r.sources))
	for _, s := range r.sources {
		srcs = append(srcs, s)
	}
	r.mu.Unlock()
	for _, s := range srcs {
		s.close()
	}
	for _, q := range qs {
		if q.Stop != nil {
			q.Stop()
		}
	}
}

// QuotaError reports a tenant at its query cap (HTTP 429 upstairs).
type QuotaError struct {
	Tenant string
	Limit  int
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("fleet: tenant %q at query quota (%d)", e.Tenant, e.Limit)
}

// DuplicateError reports a query name collision (HTTP 409 upstairs).
type DuplicateError struct{ Name string }

func (e *DuplicateError) Error() string {
	return fmt.Sprintf("fleet: query %q already registered", e.Name)
}

// Source is one named ingest stream: a broadcast ring fed by any
// number of network connections (serialized here — the ring is
// single-producer) and consumed by any number of runtime queries.
type Source struct {
	name  string
	ring  *fanout.Broadcast
	clock resilience.Clock

	// pubMu serializes publishes from concurrent connections and the
	// token bucket they refill.
	pubMu      sync.Mutex
	rate       int     // data tuples/sec; 0 = unlimited
	tokens     float64 // current bucket level
	lastRefill time.Time
	closed     bool

	tuples   atomic.Int64 // data tuples admitted to the ring
	rateShed atomic.Int64 // data tuples dropped by the rate limiter
}

// Name returns the source's registered name.
func (s *Source) Name() string { return s.name }

// Tuples reports data tuples admitted to the ring.
func (s *Source) Tuples() int64 { return s.tuples.Load() }

// RateShed reports data tuples dropped by the per-source rate limiter.
// The runtime queries fold it into their shed totals: quota sheds are
// quality loss exactly like ring laps and overload drops.
func (s *Source) RateShed() int64 { return s.rateShed.Load() }

// Attach subscribes a runtime query to the source at the current
// frontier under ShedOldest (see the package comment for why runtime
// queries never get Block).
func (s *Source) Attach(query string) *fanout.Sub {
	return s.ring.SubscribeLate(query, fanout.ShedOldest)
}

// Publish admits one batch with no wire provenance. See PublishProv.
func (s *Source) Publish(items []stream.Item) error {
	return s.PublishProv(items, stream.BatchProv{})
}

// PublishProv admits one batch: the rate limiter sheds over-rate data
// tuples (heartbeats always pass), the remainder is copied into a
// ring-pooled slice and published with the batch's wire provenance.
// The input slice is never retained.
func (s *Source) PublishProv(items []stream.Item, prov stream.BatchProv) error {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	if s.closed {
		return fanout.ErrClosed
	}
	admitted := s.ring.Get()
	var shed, data int64
	if s.rate > 0 {
		now := s.clock.Now()
		s.tokens += now.Sub(s.lastRefill).Seconds() * float64(s.rate)
		if cap := float64(s.rate); s.tokens > cap {
			s.tokens = cap
		}
		s.lastRefill = now
		for _, it := range items {
			if !it.Heartbeat {
				if s.tokens < 1 {
					shed++
					continue
				}
				s.tokens--
				data++
			}
			admitted = append(admitted, it)
		}
	} else {
		admitted = append(admitted, items...)
		for _, it := range items {
			if !it.Heartbeat {
				data++
			}
		}
	}
	if shed > 0 {
		s.rateShed.Add(shed)
	}
	if len(admitted) == 0 {
		return nil
	}
	if err := s.ring.PublishProv(context.Background(), admitted, prov); err != nil {
		return err
	}
	s.tuples.Add(data)
	return nil
}

// close publishes the end-of-stream marker so every attached query
// drains and finishes cleanly.
func (s *Source) close() {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.ring.Close()
}
