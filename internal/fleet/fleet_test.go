package fleet

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fanout"
	"repro/internal/obs"
	"repro/internal/stream"
)

// fakeClock is a manually-advanced resilience.Clock for deterministic
// rate-limiter tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	c.advance(d)
	return nil
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func dataItems(start, n int) []stream.Item {
	out := make([]stream.Item, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, stream.DataItem(stream.Tuple{
			TS: stream.Time(start + i), Arrival: stream.Time(start + i),
			Seq: uint64(start + i), Value: float64(start + i),
		}))
	}
	return out
}

// drainSub reads data values off a subscription until end of stream.
func drainSub(t *testing.T, sub *fanout.Sub) []float64 {
	t.Helper()
	src := sub.ErrSource(context.Background())
	var vals []float64
	for {
		it, ok, err := src.NextErr()
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
		if !ok {
			return vals
		}
		if !it.Heartbeat {
			vals = append(vals, it.Tuple.Value)
		}
	}
}

func TestPublishCreatesSourceAndCopiesBatch(t *testing.T) {
	r := NewRegistry(Options{})
	if r.HasSource("s1") {
		t.Fatal("source exists before first publish")
	}
	sub := r.Source("s1").Attach("q1")
	if !r.HasSource("s1") {
		t.Fatal("Source() did not register the source")
	}

	// Reuse one backing buffer across publishes, as the listener does;
	// the source must copy, so the consumer still sees the original
	// values.
	buf := make([]stream.Item, 0, 8)
	for i := 0; i < 4; i++ {
		buf = append(buf[:0], dataItems(i*10, 5)...)
		if err := r.Publish("s1", "t1", buf, stream.BatchProv{}); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	vals := drainSub(t, sub)
	if len(vals) != 20 {
		t.Fatalf("got %d values, want 20", len(vals))
	}
	for i, want := range []float64{0, 10, 20, 30} {
		if vals[i*5] != want {
			t.Fatalf("batch %d head = %v, want %v (batch aliased the reused buffer)", i, vals[i*5], want)
		}
	}
	if got := r.Source("s1").Tuples(); got != 20 {
		t.Fatalf("Tuples() = %d, want 20", got)
	}
}

func TestQueryQuotaPerTenant(t *testing.T) {
	r := NewRegistry(Options{Quotas: Quotas{MaxQueriesPerTenant: 2}})
	add := func(name, tenant string) error {
		return r.AddQuery(&Query{Name: name, Tenant: tenant})
	}
	if err := add("q1", "acme"); err != nil {
		t.Fatal(err)
	}
	if err := add("q2", "acme"); err != nil {
		t.Fatal(err)
	}
	err := add("q3", "acme")
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Tenant != "acme" || qe.Limit != 2 {
		t.Fatalf("third query: err=%v, want QuotaError{acme,2}", err)
	}
	// Another tenant is unaffected.
	if err := add("q3", "other"); err != nil {
		t.Fatal(err)
	}
	// Duplicate names collide across tenants.
	var de *DuplicateError
	if err := add("q1", "other"); !errors.As(err, &de) {
		t.Fatalf("duplicate name: err=%v, want DuplicateError", err)
	}
	// Removing frees the slot.
	stopped := false
	r.Query("q2").Stop = func() { stopped = true }
	if !r.RemoveQuery("q2") {
		t.Fatal("RemoveQuery(q2) = false")
	}
	if !stopped {
		t.Fatal("RemoveQuery did not invoke Stop")
	}
	if r.RemoveQuery("q2") {
		t.Fatal("second RemoveQuery(q2) = true")
	}
	if err := add("q4", "acme"); err != nil {
		t.Fatalf("after removal: %v", err)
	}
	got := r.QueryNames()
	want := []string{"q1", "q3", "q4"}
	if len(got) != len(want) {
		t.Fatalf("QueryNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("QueryNames() = %v, want %v", got, want)
		}
	}
}

func TestRateLimiterShedsDataKeepsHeartbeats(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	r := NewRegistry(Options{Quotas: Quotas{MaxIngestPerSec: 100}, Clock: clk})
	src := r.Source("s1")
	sub := src.Attach("q1")

	// Burst capacity is one second of rate: 150 data tuples against a
	// full 100-token bucket admits 100 and sheds 50. The interleaved
	// heartbeat always passes.
	batch := append(dataItems(0, 150), stream.HeartbeatItem(999))
	if err := src.Publish(batch); err != nil {
		t.Fatal(err)
	}
	if got := src.RateShed(); got != 50 {
		t.Fatalf("RateShed = %d, want 50", got)
	}
	if got := src.Tuples(); got != 100 {
		t.Fatalf("Tuples = %d, want 100", got)
	}

	// Half a second refills 50 tokens.
	clk.advance(500 * time.Millisecond)
	if err := src.Publish(dataItems(200, 60)); err != nil {
		t.Fatal(err)
	}
	if got := src.RateShed(); got != 60 {
		t.Fatalf("RateShed after refill = %d, want 60", got)
	}

	r.Close()
	vals := drainSub(t, sub)
	if len(vals) != 150 {
		t.Fatalf("consumer saw %d data tuples, want 150 (100 + 50 admitted)", len(vals))
	}
}

func TestCloseEndsStreamsAndStopsQueries(t *testing.T) {
	r := NewRegistry(Options{})
	sub := r.Source("s1").Attach("q1")
	stopped := 0
	if err := r.AddQuery(&Query{Name: "q1", Tenant: "t", Stop: func() { stopped++ }}); err != nil {
		t.Fatal(err)
	}
	if err := r.Publish("s1", "t", dataItems(0, 3), stream.BatchProv{}); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // idempotent
	if stopped != 1 {
		t.Fatalf("Stop ran %d times, want 1", stopped)
	}
	if vals := drainSub(t, sub); len(vals) != 3 {
		t.Fatalf("consumer saw %d values, want 3 then clean end", len(vals))
	}
	if err := r.Publish("s1", "t", dataItems(0, 1), stream.BatchProv{}); err == nil {
		t.Fatal("Publish after Close should fail")
	}
	if err := r.AddQuery(&Query{Name: "q2", Tenant: "t"}); err == nil {
		t.Fatal("AddQuery after Close should fail")
	}
}

func TestConcurrentPublishersOneRing(t *testing.T) {
	r := NewRegistry(Options{})
	src := r.Source("s1")
	sub := src.Attach("q1")
	const conns, per = 4, 250
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i += 50 {
				if err := src.Publish(dataItems(c*per+i, 50)); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	done := make(chan []float64, 1)
	go func() { done <- drainSub(t, sub) }()
	wg.Wait()
	r.Close()
	vals := <-done
	if len(vals) != conns*per {
		t.Fatalf("got %d values, want %d", len(vals), conns*per)
	}
	if got := src.Tuples(); got != conns*per {
		t.Fatalf("Tuples = %d, want %d", got, conns*per)
	}
}

func TestAdmissiblePrecheckMatchesAddQuery(t *testing.T) {
	r := NewRegistry(Options{Quotas: Quotas{MaxQueriesPerTenant: 1}})
	if err := r.Admissible("q1", "acme"); err != nil {
		t.Fatalf("empty registry: %v", err)
	}
	if err := r.AddQuery(&Query{Name: "q1", Tenant: "acme"}); err != nil {
		t.Fatal(err)
	}
	var de *DuplicateError
	if err := r.Admissible("q1", "other"); !errors.As(err, &de) {
		t.Fatalf("duplicate name: got %v, want DuplicateError", err)
	}
	var qe *QuotaError
	if err := r.Admissible("q2", "acme"); !errors.As(err, &qe) {
		t.Fatalf("tenant at quota: got %v, want QuotaError", err)
	}
	if err := r.Admissible("q2", "other"); err != nil {
		t.Fatalf("other tenant under quota: %v", err)
	}
	// Precheck reserves nothing: the slot is still takeable.
	if err := r.AddQuery(&Query{Name: "q2", Tenant: "other"}); err != nil {
		t.Fatal(err)
	}
	r.Close()
	if err := r.Admissible("q3", "other"); err == nil {
		t.Fatal("closed registry: want error")
	}
}

func TestSourceNamesAndName(t *testing.T) {
	r := NewRegistry(Options{})
	r.Source("zeta")
	r.Source("alpha")
	r.Source("alpha") // idempotent
	got := r.SourceNames()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("SourceNames = %v, want [alpha zeta]", got)
	}
	if n := r.Source("alpha").Name(); n != "alpha" {
		t.Fatalf("Name = %q", n)
	}
}

func TestTenantsRollup(t *testing.T) {
	r := NewRegistry(Options{})
	for _, q := range []*Query{
		{Name: "a1", Tenant: "acme"},
		{Name: "a2", Tenant: "acme"},
		{Name: "b1", Tenant: "beta"},
		{Name: "c1"}, // empty tenant rolls up under ""
	} {
		if err := r.AddQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	got := r.Tenants()
	if len(got) != 3 || got["acme"] != 2 || got["beta"] != 1 || got[""] != 1 {
		t.Fatalf("Tenants = %v", got)
	}
	// The map is a copy: mutating it must not corrupt the registry.
	got["acme"] = 99
	if r.Tenants()["acme"] != 2 {
		t.Fatal("Tenants returned a live reference")
	}
	// Removal drains the count; the last query of a tenant deletes the
	// entry entirely.
	r.RemoveQuery("a1")
	r.RemoveQuery("b1")
	got = r.Tenants()
	if got["acme"] != 1 {
		t.Fatalf("acme = %d after removal, want 1", got["acme"])
	}
	if _, ok := got["beta"]; ok {
		t.Fatalf("beta lingers after its last query: %v", got)
	}
}

func TestAdmissionErrorStrings(t *testing.T) {
	qe := &QuotaError{Tenant: "acme", Limit: 2}
	if s := qe.Error(); s != `fleet: tenant "acme" at query quota (2)` {
		t.Fatalf("QuotaError = %q", s)
	}
	de := &DuplicateError{Name: "q1"}
	if s := de.Error(); s != `fleet: query "q1" already registered` {
		t.Fatalf("DuplicateError = %q", s)
	}
}

func TestPublishOnClosedSourceAndRegistry(t *testing.T) {
	r := NewRegistry(Options{})
	s := r.Source("s1")
	r.Close()
	if err := s.PublishProv(dataItems(0, 1), stream.BatchProv{}); !errors.Is(err, fanout.ErrClosed) {
		t.Fatalf("publish on closed source = %v, want ErrClosed", err)
	}
	if err := r.Publish("s1", "t", dataItems(0, 1), stream.BatchProv{}); err == nil {
		t.Fatal("publish on closed registry must fail")
	}
	if err := r.AddQuery(&Query{Name: "late"}); err == nil {
		t.Fatal("admission on closed registry must fail")
	}
	if err := r.Admissible("late", "t"); err == nil {
		t.Fatal("admissible on closed registry must fail")
	}
	// Double-close of both the registry and the source is a no-op.
	r.Close()
	s.close()
}

func TestPublishEmptyAndFullyShedBatches(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	r := NewRegistry(Options{Quotas: Quotas{MaxIngestPerSec: 1}, Clock: clk})
	s := r.Source("s1")
	sub := s.Attach("q")

	if err := s.Publish(nil); err != nil {
		t.Fatalf("empty publish: %v", err)
	}
	// Burst capacity is one token: the first data tuple drains it, a
	// same-instant follow-up batch sheds entirely and publishes nothing.
	if err := s.Publish(dataItems(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(dataItems(1, 3)); err != nil {
		t.Fatal(err)
	}
	if got := s.RateShed(); got != 3 {
		t.Fatalf("RateShed = %d, want 3", got)
	}
	if got := s.Tuples(); got != 1 {
		t.Fatalf("Tuples = %d, want 1", got)
	}
	s.close()
	vals := drainSub(t, sub)
	if len(vals) != 1 {
		t.Fatalf("ring carried %d tuples, want 1 (fully-shed batch must publish nothing)", len(vals))
	}
}

func TestRemoveQueryWithoutStopHook(t *testing.T) {
	r := NewRegistry(Options{})
	if err := r.AddQuery(&Query{Name: "bare", Tenant: "t"}); err != nil {
		t.Fatal(err)
	}
	if !r.RemoveQuery("bare") {
		t.Fatal("existing query not removed")
	}
	if r.RemoveQuery("bare") {
		t.Fatal("second removal reported success")
	}
	if r.Query("bare") != nil {
		t.Fatal("query still resolvable")
	}
}

func TestSourceMetricsRegistration(t *testing.T) {
	reg := obs.NewRegistry()
	clk := &fakeClock{now: time.Unix(1000, 0)}
	r := NewRegistry(Options{Quotas: Quotas{MaxIngestPerSec: 2}, Clock: clk, Metrics: reg})
	s := r.Source("sensors")
	if err := s.Publish(dataItems(0, 4)); err != nil { // 2 admitted, 2 shed
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`aq_source_tuples_total{source="sensors"} 2`,
		`aq_source_rate_shed_total{source="sensors"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, out)
		}
	}
}
