package repro

import (
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target). Reference-style
// links and autolinks are out of scope — the repository's docs use
// inline links throughout.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinks walks every *.md file in the repository and verifies that
// each relative link resolves to an existing file or directory. Dead
// relative links are how documentation rots silently; this is the
// doc-link half of `make check` (the `doccheck` target).
func TestDocLinks(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip VCS metadata and test corpora.
			if name := d.Name(); path != "." && (name == ".git" || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found; is the test running at the repo root?")
	}

	var checked int
	for _, md := range mdFiles {
		raw, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		// Strip fenced code blocks: shell transcripts and sample output
		// legitimately contain )-adjacent parens that are not links.
		text := stripCodeFences(string(raw))
		for _, m := range mdLink.FindAllStringSubmatch(text, -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue // external; liveness is not this test's business
			case strings.HasPrefix(target, "#"):
				continue // intra-document anchor
			}
			// Drop anchors and URL-escapes from relative targets.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			if unescaped, err := url.PathUnescape(target); err == nil {
				target = unescaped
			}
			resolved := filepath.Join(filepath.Dir(md), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: dead relative link (%s): %v", md, m[1], err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no relative links checked; the link regexp may have rotted")
	}
	t.Logf("checked %d relative links across %d markdown files", checked, len(mdFiles))
}

// metricRegistration matches a metric registration call with its quoted
// name: the Registry constructors (Counter, Gauge, Histogram,
// CounterFunc, GaugeFunc) plus the lowercase local helper closures
// cmd/aqserver/obs.go registers through. Quoted metric names that are
// *not* registrations (e.g. cqlsh matching the derived
// `aq_wire_latency_ms_count` reading name) deliberately do not match.
var metricRegistration = regexp.MustCompile(
	`(?:Counter|Gauge|Histogram|CounterFunc|GaugeFunc|counter|gauge)\(\s*"((?:aq|durable)_[a-z0-9_]+)"`)

// catalogRow matches one metric-catalog table row in
// docs/OBSERVABILITY.md: a table line whose first cell is a backticked
// aq_/durable_ name. Prose mentions and PromQL samples are not rows.
var catalogRow = regexp.MustCompile("(?m)^\\|\\s*`((?:aq|durable)_[a-z0-9_]+)`\\s*\\|")

// TestMetricsCatalog is the metrics half of `make check`'s doccheck: the
// metric catalog in docs/OBSERVABILITY.md and the registrations in the
// code must agree in both directions. A metric added without a catalog
// row is invisible to operators; a catalog row whose metric was renamed
// or removed is documentation lying about the dashboard.
func TestMetricsCatalog(t *testing.T) {
	inCode := map[string][]string{} // name -> files registering it
	for _, root := range []string{"internal", "cmd", "examples"} {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for _, m := range metricRegistration.FindAllStringSubmatch(string(src), -1) {
				inCode[m[1]] = append(inCode[m[1]], path)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	raw, err := os.ReadFile(filepath.Join("docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatal(err)
	}
	inDocs := map[string]bool{}
	for _, m := range catalogRow.FindAllStringSubmatch(string(raw), -1) {
		inDocs[m[1]] = true
	}

	if len(inCode) < 40 || len(inDocs) < 40 {
		t.Fatalf("extraction rotted: %d registered names, %d catalogued rows (want ≥ 40 each)",
			len(inCode), len(inDocs))
	}
	for name, files := range inCode {
		if !inDocs[name] {
			t.Errorf("metric %q registered in %s but has no catalog row in docs/OBSERVABILITY.md",
				name, files[0])
		}
	}
	for name := range inDocs {
		if _, ok := inCode[name]; !ok {
			t.Errorf("docs/OBSERVABILITY.md catalogues %q but no code registers it", name)
		}
	}
	t.Logf("catalog check: %d registered metric names against %d documented rows", len(inCode), len(inDocs))
}

func stripCodeFences(s string) string {
	var out strings.Builder
	inFence := false
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if !inFence {
			out.WriteString(line)
			out.WriteByte('\n')
		}
	}
	return out.String()
}
