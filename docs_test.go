package repro

import (
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target). Reference-style
// links and autolinks are out of scope — the repository's docs use
// inline links throughout.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinks walks every *.md file in the repository and verifies that
// each relative link resolves to an existing file or directory. Dead
// relative links are how documentation rots silently; this is the
// doc-link half of `make check` (the `doccheck` target).
func TestDocLinks(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip VCS metadata and test corpora.
			if name := d.Name(); path != "." && (name == ".git" || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found; is the test running at the repo root?")
	}

	var checked int
	for _, md := range mdFiles {
		raw, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		// Strip fenced code blocks: shell transcripts and sample output
		// legitimately contain )-adjacent parens that are not links.
		text := stripCodeFences(string(raw))
		for _, m := range mdLink.FindAllStringSubmatch(text, -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue // external; liveness is not this test's business
			case strings.HasPrefix(target, "#"):
				continue // intra-document anchor
			}
			// Drop anchors and URL-escapes from relative targets.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			if unescaped, err := url.PathUnescape(target); err == nil {
				target = unescaped
			}
			resolved := filepath.Join(filepath.Dir(md), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: dead relative link (%s): %v", md, m[1], err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no relative links checked; the link regexp may have rotted")
	}
	t.Logf("checked %d relative links across %d markdown files", checked, len(mdFiles))
}

func stripCodeFences(s string) string {
	var out strings.Builder
	inFence := false
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if !inFence {
			out.WriteString(line)
			out.WriteByte('\n')
		}
	}
	return out.String()
}
